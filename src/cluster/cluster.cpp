#include "cluster/cluster.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace vboost::cluster {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
hashU64(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void
hashDouble(std::uint64_t &h, double d)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    hashU64(h, bits);
}

void
hashTenantTotals(std::uint64_t &h, const serve::TenantStats &t)
{
    hashU64(h, t.requests);
    hashU64(h, t.admitted);
    hashU64(h, t.shedQueueFull);
    hashU64(h, t.shedTenantQuota);
    hashU64(h, t.batches);
    hashU64(h, t.inferences);
    hashU64(h, t.correct);
    hashU64(h, t.retries);
    hashU64(h, t.escalations);
    hashU64(h, t.quarantines);
    hashU64(h, t.uncorrected);
    hashDouble(h, t.energyPj);
    hashU64(h, t.queueWaitTicksSum);
    hashU64(h, t.latencyTicksSum);
    hashU64(h, t.maxLatencyTicks);
}

/** Sum `from` into `into` (serial, node-index order: §7). */
void
accumulate(serve::TenantStats &into, const serve::TenantStats &from)
{
    into.requests += from.requests;
    into.admitted += from.admitted;
    into.shedQueueFull += from.shedQueueFull;
    into.shedTenantQuota += from.shedTenantQuota;
    into.batches += from.batches;
    into.inferences += from.inferences;
    into.correct += from.correct;
    into.retries += from.retries;
    into.escalations += from.escalations;
    into.quarantines += from.quarantines;
    into.uncorrected += from.uncorrected;
    into.energyPj += from.energyPj;
    into.queueWaitTicksSum += from.queueWaitTicksSum;
    into.latencyTicksSum += from.latencyTicksSum;
    into.maxLatencyTicks =
        std::max(into.maxLatencyTicks, from.maxLatencyTicks);
}

} // namespace

const char *
toString(RouteStatus status)
{
    switch (status) {
      case RouteStatus::Primary:
        return "primary";
      case RouteStatus::Spilled:
        return "spilled";
      case RouteStatus::FailedOver:
        return "failed_over";
      case RouteStatus::ShedCluster:
        return "shed_cluster";
    }
    return "?";
}

void
ClusterConfig::validate() const
{
    if (shards < 1)
        fatal("ClusterConfig: shards must be >= 1, got ", shards);
    if (replicas < 1)
        fatal("ClusterConfig: replicas must be >= 1, got ", replicas);
    if (replicas > shards)
        fatal("ClusterConfig: replicas (", replicas,
              ") cannot exceed shards (", shards, ")");
    if (epochRequests < 1)
        fatal("ClusterConfig: epochRequests must be >= 1, got ",
              epochRequests);
    if (ring.virtualNodes < 1)
        fatal("ClusterConfig: ring.virtualNodes must be >= 1, got ",
              ring.virtualNodes);
    failover.validate();
    for (const NodeLossEvent &ev : lossEvents) {
        if (ev.node < 0 || ev.node >= shards)
            fatal("ClusterConfig: loss event targets node ", ev.node,
                  " outside [0, ", shards, ")");
    }
    node.validate();
}

std::uint64_t
ClusterStats::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    hashU64(h, requests);
    hashU64(h, routedPrimary);
    hashU64(h, routedSpill);
    hashU64(h, routedFailover);
    hashU64(h, shedCluster);
    hashU64(h, transitions);
    hashTenantTotals(h, total);
    hashU64(h, perNode.size());
    for (const NodeStats &n : perNode) {
        hashU64(h, n.primaryRequests);
        hashU64(h, n.spillRequests);
        hashU64(h, n.failoverRequests);
        hashU64(h, n.epochsServed);
        hashTenantTotals(h, n.serve);
        hashU64(h, n.lastCompletionTick);
        hashU64(h, static_cast<std::uint64_t>(n.finalState));
        hashDouble(h, n.finalEwma);
    }
    hashDouble(h, p50LatencyTicks);
    hashDouble(h, p95LatencyTicks);
    for (double v : p95LatencyBySlo)
        hashDouble(h, v);
    for (double v : accuracyBySlo)
        hashDouble(h, v);
    hashDouble(h, accuracy);
    hashU64(h, makespanTicks);
    return h;
}

std::string
ServingCluster::nodeName(int i)
{
    return "node-" + std::to_string(i);
}

ServingCluster::ServingCluster(const core::SimContext &ctx,
                               dnn::Network &net, const dnn::Dataset &pool,
                               accel::LayerActivity per_inference,
                               const serve::OperatingPointPlanner &planner,
                               ClusterConfig cfg)
    : cfg_(std::move(cfg)),
      ring_(cfg_.ring),
      health_(cfg_.shards, cfg_.failover)
{
    cfg_.validate();
    nodes_.reserve(static_cast<std::size_t>(cfg_.shards));
    for (int i = 0; i < cfg_.shards; ++i) {
        const std::string name = nodeName(i);
        ring_.addNode(name);
        nodeIndex_.emplace(name, i);
        serve::ServerConfig node_cfg = cfg_.node;
        // Every node is its own device: an independent fault map and
        // independent per-batch RNG streams.
        node_cfg.seed = cfg_.node.seed + static_cast<std::uint64_t>(i);
        Node node;
        node.server = std::make_unique<serve::InferenceServer>(
            ctx, net, pool, per_inference,
            serve::OperatingPointPlanner(planner), node_cfg);
        nodes_.push_back(std::move(node));
    }
}

void
ServingCluster::attachObservability(obs::Observability *o,
                                    obs::Labels labels)
{
    obs_ = o;
    obsLabels_ = std::move(labels);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!obs_) {
            nodes_[i].obsv.reset();
            nodes_[i].server->attachObservability(nullptr);
            continue;
        }
        obs::Labels node_labels = obsLabels_;
        node_labels["node"] = nodeName(static_cast<int>(i));
        nodes_[i].obsv = std::make_unique<obs::Observability>();
        nodes_[i].obsv->trace.setProcessName(
            i, nodeName(static_cast<int>(i)));
        nodes_[i].server->attachObservability(nodes_[i].obsv.get(), i,
                                              node_labels);
    }
}

RouteRecord
ServingCluster::routeOne(const serve::InferenceRequest &req,
                         std::uint64_t epoch, std::size_t epoch_cap,
                         std::vector<std::size_t> &epoch_load)
{
    RouteRecord rec;
    rec.id = req.id;
    rec.epoch = epoch;
    const std::string &owner = ring_.nodeFor(req.tenant);
    rec.primary = nodeIndex_.at(owner);
    const auto group = ring_.replicasFor(
        req.tenant, static_cast<std::size_t>(cfg_.replicas));

    const auto has_room = [&](int idx) {
        if (!health_.accepting(idx))
            return false;
        return epoch_cap == 0 ||
               epoch_load[static_cast<std::size_t>(idx)] < epoch_cap;
    };

    // Primary-first for locality; overflow goes to the least-loaded
    // accepting replica (ties to group order), so a hot shard's spill
    // spreads over the whole group instead of piling onto the next
    // successor. Pure function of (health, epoch_load) — serial path.
    if (has_room(rec.primary)) {
        rec.node = rec.primary;
    } else {
        for (const std::string &cand : group) {
            const int idx = nodeIndex_.at(cand);
            if (idx == rec.primary || !has_room(idx))
                continue;
            if (rec.node < 0 ||
                epoch_load[static_cast<std::size_t>(idx)] <
                    epoch_load[static_cast<std::size_t>(rec.node)])
                rec.node = idx;
        }
    }
    if (rec.node < 0) {
        rec.status = RouteStatus::ShedCluster;
    } else if (rec.node == rec.primary) {
        rec.status = RouteStatus::Primary;
    } else if (!health_.accepting(rec.primary)) {
        rec.status = RouteStatus::FailedOver;
    } else {
        rec.status = RouteStatus::Spilled;
    }
    if (rec.node >= 0)
        ++epoch_load[static_cast<std::size_t>(rec.node)];
    return rec;
}

ClusterResult
ServingCluster::run(const std::vector<serve::InferenceRequest> &trace)
{
    // Audited for VB002: keyed lookup only (emplace + .at), never
    // iterated, so hash order cannot leak into outcomes.
    std::unordered_map<std::uint64_t, std::size_t> id_to_index;
    id_to_index.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i > 0 && trace[i].arrivalTick < trace[i - 1].arrivalTick)
            fatal("ServingCluster::run: arrival ticks must be "
                  "nondecreasing (trace index ", i, ")");
        if (!id_to_index.emplace(trace[i].id, i).second)
            fatal("ServingCluster::run: duplicate request id ",
                  trace[i].id);
    }

    ClusterResult result;
    result.routes.resize(trace.size());
    result.outcomes.resize(trace.size());
    const std::size_t transitions_before = health_.transitions().size();
    const auto per_epoch = static_cast<std::size_t>(cfg_.epochRequests);
    const auto num_nodes = nodes_.size();

    std::vector<NodeStats> node_stats(num_nodes);
    /** epoch id -> arrival tick of its first request (trace markers). */
    std::map<std::uint64_t, serve::Tick> epoch_start_ticks;

    for (std::size_t begin = 0; begin < trace.size();
         begin += per_epoch) {
        const std::size_t end =
            std::min(begin + per_epoch, trace.size());
        const std::uint64_t epoch = nextEpoch_++;
        epoch_start_ticks.emplace(epoch, trace[begin].arrivalTick);

        // Injected losses land at the epoch boundary, in config order.
        for (const NodeLossEvent &ev : cfg_.lossEvents) {
            if (ev.epoch == epoch)
                health_.injectLoss(epoch, ev.node);
        }

        // Effective per-shard bound for this epoch: the configured
        // bound is the fair share at full membership; with nodes out,
        // survivors stretch (ceil-scaled by the membership ratio) to
        // absorb the failover load instead of shedding it.
        std::size_t epoch_cap = cfg_.shardQueueCapacity;
        if (epoch_cap != 0) {
            std::size_t accepting = 0;
            for (std::size_t n = 0; n < num_nodes; ++n) {
                if (health_.accepting(static_cast<int>(n)))
                    ++accepting;
            }
            if (accepting > 0 && accepting < num_nodes)
                epoch_cap = (epoch_cap * num_nodes + accepting - 1) /
                            accepting;
        }

        // Serial routing pass in trace order: the admission tier's
        // per-shard epoch queues fill as decisions are made.
        std::vector<std::size_t> epoch_load(num_nodes, 0);
        std::vector<std::vector<serve::InferenceRequest>> subtraces(
            num_nodes);
        for (std::size_t i = begin; i < end; ++i) {
            const serve::InferenceRequest &req = trace[i];
            RouteRecord rec = routeOne(req, epoch, epoch_cap, epoch_load);
            result.routes[i] = rec;
            if (rec.node < 0) {
                serve::RequestOutcome &out = result.outcomes[i];
                out.id = req.id;
                out.tenant = req.tenant;
                out.slo = req.slo;
                out.arrivalTick = req.arrivalTick;
                out.admitted = false;
                out.shedReason = serve::ShedReason::QueueFull;
                continue;
            }
            const auto n = static_cast<std::size_t>(rec.node);
            subtraces[n].push_back(req);
            switch (rec.status) {
              case RouteStatus::Primary:
                ++node_stats[n].primaryRequests;
                break;
              case RouteStatus::Spilled:
                ++node_stats[n].spillRequests;
                break;
              case RouteStatus::FailedOver:
                ++node_stats[n].failoverRequests;
                break;
              case RouteStatus::ShedCluster:
                break;
            }
        }

        // Node pipelines execute in index order; each run is §7-clean
        // internally, so the epoch outcome is thread-count invariant.
        for (std::size_t n = 0; n < num_nodes; ++n) {
            const bool served = !subtraces[n].empty();
            double error_rate = 0.0;
            if (served) {
                const serve::ServeResult r =
                    nodes_[n].server->run(subtraces[n]);
                std::uint64_t reads = 0;
                std::uint64_t clean = 0;
                for (const serve::BatchRecord &b : r.batches) {
                    reads += b.resilience.reads;
                    clean += b.resilience.cleanReads;
                    node_stats[n].lastCompletionTick =
                        std::max(node_stats[n].lastCompletionTick,
                                 b.completionTick);
                }
                error_rate =
                    reads ? static_cast<double>(reads - clean) /
                                static_cast<double>(reads)
                          : 0.0;
                accumulate(node_stats[n].serve, r.stats.total);
                ++node_stats[n].epochsServed;
                for (const serve::RequestOutcome &out : r.outcomes)
                    result.outcomes[id_to_index.at(out.id)] = out;
            }
            health_.observeEpoch(epoch, static_cast<int>(n), error_rate,
                                 served);
        }

        // A node that went Down this epoch restarts: its virtual
        // worker-slot backlog is gone when it rejoins.
        for (std::size_t t = transitions_before;
             t < health_.transitions().size(); ++t) {
            const NodeTransition &tr = health_.transitions()[t];
            if (tr.epoch == epoch && tr.to == NodeState::Down)
                nodes_[static_cast<std::size_t>(tr.node)]
                    .server->resetWorkerBacklog();
        }
    }

    result.transitions.assign(
        health_.transitions().begin() +
            static_cast<std::ptrdiff_t>(transitions_before),
        health_.transitions().end());
    for (std::size_t n = 0; n < num_nodes; ++n) {
        node_stats[n].finalState = health_.state(static_cast<int>(n));
        node_stats[n].finalEwma = health_.ewma(static_cast<int>(n));
    }
    result.stats.perNode = std::move(node_stats);
    result.stats = aggregate(result, transitions_before);
    publishObservability(result);

    // Cluster-tier trace markers need the epoch start ticks; publish
    // them here where the map is still in scope.
    if (obs_) {
        const auto admission_pid =
            static_cast<std::uint64_t>(cfg_.shards);
        for (const NodeTransition &tr : result.transitions) {
            const auto it = epoch_start_ticks.find(tr.epoch);
            const serve::Tick ts =
                it == epoch_start_ticks.end() ? 0 : it->second;
            obs_->trace.instant(
                admission_pid, 0,
                std::string("node.") + toString(tr.to), ts,
                {{"node", static_cast<double>(tr.node)},
                 {"ewma", tr.ewma}},
                {{"cause", toString(tr.cause)}});
        }
    }
    return result;
}

ClusterStats
ServingCluster::aggregate(const ClusterResult &result,
                          std::size_t transitions_before) const
{
    ClusterStats stats;
    stats.perNode = result.stats.perNode;
    stats.requests = result.routes.size();
    for (const RouteRecord &rec : result.routes) {
        switch (rec.status) {
          case RouteStatus::Primary:
            ++stats.routedPrimary;
            break;
          case RouteStatus::Spilled:
            ++stats.routedSpill;
            break;
          case RouteStatus::FailedOver:
            ++stats.routedFailover;
            break;
          case RouteStatus::ShedCluster:
            ++stats.shedCluster;
            break;
        }
    }
    stats.transitions =
        health_.transitions().size() - transitions_before;

    for (const NodeStats &n : stats.perNode) {
        accumulate(stats.total, n.serve);
        stats.makespanTicks =
            std::max(stats.makespanTicks, n.lastCompletionTick);
    }

    std::vector<double> latencies;
    std::array<std::vector<double>, serve::kNumSloClasses> by_slo;
    std::array<std::uint64_t, serve::kNumSloClasses> served{};
    std::array<std::uint64_t, serve::kNumSloClasses> correct{};
    for (const serve::RequestOutcome &out : result.outcomes) {
        if (!out.admitted)
            continue;
        const auto s = static_cast<std::size_t>(out.slo);
        const auto latency = static_cast<double>(out.latencyTicks());
        latencies.push_back(latency);
        by_slo[s].push_back(latency);
        ++served[s];
        if (out.correct)
            ++correct[s];
    }
    if (!latencies.empty()) {
        stats.p50LatencyTicks = percentile(latencies, 50.0);
        stats.p95LatencyTicks = percentile(latencies, 95.0);
    }
    for (std::size_t s = 0; s < serve::kNumSloClasses; ++s) {
        if (!by_slo[s].empty())
            stats.p95LatencyBySlo[s] = percentile(by_slo[s], 95.0);
        stats.accuracyBySlo[s] =
            served[s] ? static_cast<double>(correct[s]) /
                            static_cast<double>(served[s])
                      : 0.0;
    }
    stats.accuracy = stats.total.inferences
                         ? static_cast<double>(stats.total.correct) /
                               static_cast<double>(stats.total.inferences)
                         : 0.0;
    return stats;
}

void
ServingCluster::publishObservability(const ClusterResult &result)
{
    if (!obs_)
        return;
    obs::MetricsRegistry &reg = obs_->metrics;
    const auto admission_pid = static_cast<std::uint64_t>(cfg_.shards);
    obs_->trace.setProcessName(admission_pid, "cluster admission");
    obs_->trace.setThreadName(admission_pid, 0, "router");

    for (const char *status :
         {"primary", "spilled", "failed_over", "shed_cluster"}) {
        // Touch all four series so the registry shape (and hence the
        // fingerprint surface) is load-independent.
        obs::Labels labels = obsLabels_;
        labels["status"] = status;
        reg.counter("cluster.routed", labels);
    }
    for (const RouteRecord &rec : result.routes) {
        obs::Labels labels = obsLabels_;
        labels["status"] = toString(rec.status);
        reg.counter("cluster.routed", labels).add(1);
        if (rec.status == RouteStatus::ShedCluster) {
            obs_->trace.instant(admission_pid, 0, "shed.cluster",
                                result.outcomes[&rec - result.routes.data()]
                                    .arrivalTick);
        }
    }
    for (const NodeTransition &tr : result.transitions) {
        obs::Labels labels = obsLabels_;
        labels["to"] = toString(tr.to);
        labels["cause"] = toString(tr.cause);
        reg.counter("cluster.failover.transitions", labels).add(1);
    }
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        obs::Labels labels = obsLabels_;
        labels["node"] = nodeName(static_cast<int>(n));
        reg.gauge("cluster.node.ewma", labels)
            .set(health_.ewma(static_cast<int>(n)));
        reg.gauge("cluster.node.state", labels)
            .set(static_cast<double>(
                static_cast<int>(health_.state(static_cast<int>(n)))));
    }
    obs::Labels base = obsLabels_;
    reg.gauge("cluster.latency.p50_ticks", base)
        .set(result.stats.p50LatencyTicks);
    reg.gauge("cluster.latency.p95_ticks", base)
        .set(result.stats.p95LatencyTicks);
    reg.gauge("cluster.accuracy", base).set(result.stats.accuracy);
    reg.gauge("cluster.makespan_ticks", base)
        .set(static_cast<double>(result.stats.makespanTicks));

    // Job-order merge of the node sinks (§7): node-index order, every
    // run, so the merged fingerprint is a pure function of the trace.
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        if (!nodes_[n].obsv)
            continue;
        reg.merge(nodes_[n].obsv->metrics);
        obs_->trace.merge(nodes_[n].obsv->trace);
        // Reset the node sink so the next run() merges only its own
        // delta; re-attach to refresh the server's pointer.
        obs::Labels node_labels = obsLabels_;
        node_labels["node"] = nodeName(static_cast<int>(n));
        nodes_[n].obsv = std::make_unique<obs::Observability>();
        nodes_[n].obsv->trace.setProcessName(
            n, nodeName(static_cast<int>(n)));
        nodes_[n].server->attachObservability(nodes_[n].obsv.get(), n,
                                              node_labels);
    }
}

} // namespace vboost::cluster
