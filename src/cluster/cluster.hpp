/**
 * @file
 * Sharded multi-node serving cluster (DESIGN.md §14). A ServingCluster
 * composes N serve::InferenceServer instances ("nodes", each with its
 * own chip, fault map, resilient memory and planner) behind a
 * deterministic front end:
 *
 *   consistent-hash ring (tenant -> shard, bounded virtual nodes)
 *     -> admission/load-balancing tier (per-shard bounded epoch
 *        queues, spill-to-replica overflow)
 *     -> replica groups with EWMA-degradation-triggered failover and
 *        a drain/rejoin state machine (§8 escalation semantics at
 *        node granularity)
 *     -> per-node serving pipelines on shared virtual clocks
 *     -> cluster-wide merged observability.
 *
 * Execution follows the §7 determinism contract end to end: routing
 * decisions, failover transitions and all accounting happen on serial
 * paths in trace/epoch/node-index order; only each node's batch
 * execution fans out on threads (already §7-clean inside
 * InferenceServer). Outcomes, the cluster fingerprint, the job-order-
 * merged metrics registry and the merged Chrome trace are bitwise
 * identical at any thread count — gated by the cluster_determinism
 * ctest.
 */

#ifndef VBOOST_CLUSTER_CLUSTER_HPP
#define VBOOST_CLUSTER_CLUSTER_HPP

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/failover.hpp"
#include "cluster/hash_ring.hpp"
#include "obs/observability.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"

namespace vboost::cluster {

/** One injected node-loss event (crash at a routing-epoch boundary). */
struct NodeLossEvent
{
    /** Routing epoch at whose start the node goes Down. */
    std::uint64_t epoch = 0;
    /** Node index in [0, shards). */
    int node = 0;
};

/** Cluster-tier configuration. */
struct ClusterConfig
{
    /** Number of nodes (= shards) behind the front end. */
    int shards = 4;
    /** Replica-group size per tenant key: the owner plus up to
     *  replicas-1 clockwise successors as spill/failover targets. */
    int replicas = 2;
    /** Requests per routing epoch: routing state (health, epoch
     *  queues) is frozen for an epoch, the epoch executes, and node
     *  error rates feed back serially between epochs — the cluster
     *  analog of ServerConfig::feedbackInterval. */
    int epochRequests = 64;
    /** Per-node admission bound per epoch at full membership (the
     *  "per-shard bounded queue" of the load-balancing tier); a full
     *  node spills to the least-loaded accepting replica of the group,
     *  and a request with no accepting replica with room is shed at
     *  the cluster tier. When nodes are draining/down the surviving
     *  nodes' bound stretches by the membership ratio (ceil), so
     *  failover load is absorbed rather than shed. 0 = unbounded. */
    std::size_t shardQueueCapacity = 0;
    /** Consistent-hash ring shape. */
    HashRingConfig ring;
    /** Node-health EWMA + drain/rejoin knobs. */
    FailoverConfig failover;
    /** Injected node-loss events (epoch-stamped, applied in config
     *  order at each epoch start). */
    std::vector<NodeLossEvent> lossEvents;
    /** Template for every node's serving runtime; node i runs with
     *  seed = node.seed + i (its own chip and fault map). */
    serve::ServerConfig node;

    /** Throw FatalError unless the cluster knobs are self-consistent
     *  (also validates the node ServerConfig). */
    void validate() const;
};

/** Why the admission tier placed (or dropped) a request where it did. */
enum class RouteStatus
{
    /** Served by its primary shard. */
    Primary = 0,
    /** Primary queue full: overflowed to a replica. */
    Spilled = 1,
    /** Primary not accepting (draining/down): failed over. */
    FailedOver = 2,
    /** No accepting replica with queue room: shed at the cluster
     *  tier. */
    ShedCluster = 3,
};

/** Display name of a route status. */
const char *toString(RouteStatus status);

/** The admission tier's decision for one request, in trace order. */
struct RouteRecord
{
    std::uint64_t id = 0;
    /** Routing epoch the request fell into. */
    std::uint64_t epoch = 0;
    /** Ring owner of the tenant key. */
    int primary = 0;
    /** Node that actually served it (-1 when shed). */
    int node = -1;
    RouteStatus status = RouteStatus::Primary;

    friend bool operator==(const RouteRecord &,
                           const RouteRecord &) = default;
};

/** Per-node accounting of one cluster run. */
struct NodeStats
{
    /** Requests routed to the node, by route class. */
    std::uint64_t primaryRequests = 0;
    std::uint64_t spillRequests = 0;
    std::uint64_t failoverRequests = 0;
    /** Epochs in which the node executed at least one request. */
    std::uint64_t epochsServed = 0;
    /** Node-level serve totals summed over its epoch runs. */
    serve::TenantStats serve;
    /** Latest completion tick of the node's work (0 = never ran). */
    serve::Tick lastCompletionTick = 0;
    /** Health state / EWMA at end of run. */
    NodeState finalState = NodeState::Active;
    double finalEwma = 0.0;

    friend bool operator==(const NodeStats &, const NodeStats &) = default;
};

/** Snapshot of one cluster run's accounting. */
struct ClusterStats
{
    std::uint64_t requests = 0;
    std::uint64_t routedPrimary = 0;
    std::uint64_t routedSpill = 0;
    std::uint64_t routedFailover = 0;
    std::uint64_t shedCluster = 0;
    /** Failover-log transitions during the run. */
    std::uint64_t transitions = 0;

    /** Cluster-wide serve totals (summed over nodes). */
    serve::TenantStats total;
    std::vector<NodeStats> perNode;

    /** End-to-end latency percentiles over all admitted requests. */
    double p50LatencyTicks = 0.0;
    double p95LatencyTicks = 0.0;
    /** Per-SLO-class p95 latency (indexed by SloClass). */
    std::array<double, serve::kNumSloClasses> p95LatencyBySlo{};
    /** Per-SLO-class served accuracy (indexed by SloClass; 0 when the
     *  class served nothing). */
    std::array<double, serve::kNumSloClasses> accuracyBySlo{};
    /** Fraction of served inferences predicted correctly. */
    double accuracy = 0.0;
    /** Latest completion tick across nodes (the run's makespan). */
    serve::Tick makespanTicks = 0;

    /**
     * FNV-1a digest over every field, per-node entries in index order.
     * Equal fingerprints mean bitwise-identical cluster accounting —
     * the §7 acceptance value of the cluster tier.
     */
    std::uint64_t fingerprint() const;

    friend bool operator==(const ClusterStats &,
                           const ClusterStats &) = default;
};

/** Full result of replaying one trace through the cluster. */
struct ClusterResult
{
    /** Admission-tier decisions, in trace order. */
    std::vector<RouteRecord> routes;
    /** Per-request outcomes in trace order (cluster-tier sheds appear
     *  as !admitted with reason QueueFull). */
    std::vector<serve::RequestOutcome> outcomes;
    /** Failover log, in observation order. */
    std::vector<NodeTransition> transitions;
    ClusterStats stats;
};

/**
 * The cluster front end. Owns the ring, the health monitor and the N
 * node servers; borrows the trained network and sample pool (shared by
 * every node, both must outlive the cluster).
 */
class ServingCluster
{
  public:
    /**
     * @param ctx shared study configuration.
     * @param net trained network served by every node.
     * @param pool labeled sample pool requests draw inputs from.
     * @param per_inference dataflow activity of one inference.
     * @param planner operating-point planner prototype; every node
     *        gets its own copy (independent feedback trajectories).
     * @param cfg cluster configuration.
     */
    ServingCluster(const core::SimContext &ctx, dnn::Network &net,
                   const dnn::Dataset &pool,
                   accel::LayerActivity per_inference,
                   const serve::OperatingPointPlanner &planner,
                   ClusterConfig cfg = {});

    /**
     * Replay a request trace (same preconditions as
     * InferenceServer::run) through routing, failover and the node
     * pipelines. Health and planner state persist across calls.
     */
    ClusterResult run(const std::vector<serve::InferenceRequest> &trace);

    /**
     * Attach a cluster-wide metrics + trace sink. Each run() merges
     * the per-node registries and tracers into it in node-index (job)
     * order — on top of the cluster-tier routing/failover metrics —
     * so the merged fingerprint and trace are §7 thread-count
     * invariant. Node i's spans appear under trace pid i; the
     * admission tier under pid = shards. Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o,
                             obs::Labels labels = {});

    /** Node name of index i ("node-<i>"). */
    static std::string nodeName(int i);

    const ClusterConfig &config() const { return cfg_; }
    const HashRing &ring() const { return ring_; }
    const NodeHealthMonitor &health() const { return health_; }

    /** Node server access (tests / lifecycle inspection). */
    serve::InferenceServer &node(int i) { return *nodes_.at(
        static_cast<std::size_t>(i)).server; }

  private:
    struct Node
    {
        std::unique_ptr<serve::InferenceServer> server;
        /** Node-local sink, merged into the attached sink per run. */
        std::unique_ptr<obs::Observability> obsv;
    };

    /** Route one request under current health/queue state;
     *  `epoch_cap` is this epoch's membership-scaled admission
     *  bound (0 = unbounded). */
    RouteRecord routeOne(const serve::InferenceRequest &req,
                         std::uint64_t epoch, std::size_t epoch_cap,
                         std::vector<std::size_t> &epoch_load);

    /** Aggregate one run's records into a ClusterStats snapshot. */
    ClusterStats aggregate(const ClusterResult &result,
                           std::size_t transitions_before) const;

    /** Publish cluster-tier metrics + merge node sinks (serial). */
    void publishObservability(const ClusterResult &result);

    ClusterConfig cfg_;
    HashRing ring_;
    NodeHealthMonitor health_;
    std::vector<Node> nodes_;
    /** node name -> index (ring keys are names). */
    std::map<std::string, int> nodeIndex_;
    /** Next routing epoch (persists across run() calls). */
    std::uint64_t nextEpoch_ = 0;

    obs::Observability *obs_ = nullptr;
    obs::Labels obsLabels_;
};

} // namespace vboost::cluster

#endif // VBOOST_CLUSTER_CLUSTER_HPP
