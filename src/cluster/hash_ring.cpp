#include "cluster/hash_ring.hpp"

#include "common/logging.hpp"

namespace vboost::cluster {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = kFnvOffset)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

/**
 * Murmur3 finalizer. Raw FNV-1a of short similar keys ("tenant-0007"
 * vs "tenant-0008") differs mostly in the low bits, so such keys — and
 * a node's virtual points — cluster in one narrow arc of the ring and
 * one node ends up owning every key. The finalizer's avalanche spreads
 * them uniformly over the 64-bit circle.
 */
std::uint64_t
fmix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Ring position of virtual node `k` of `node`. */
std::uint64_t
pointHash(const std::string &node, int k)
{
    // "node#k" without the string round trip: hash the name, then fold
    // in the replica index byte-wise.
    std::uint64_t h = fnv1a(node);
    h ^= static_cast<unsigned char>('#');
    h *= kFnvPrime;
    auto v = static_cast<std::uint64_t>(k);
    for (int i = 0; i < 4; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
    return fmix64(h);
}

} // namespace

HashRing::HashRing(HashRingConfig cfg) : cfg_(cfg)
{
    if (cfg_.virtualNodes < 1)
        fatal("HashRing: virtualNodes must be >= 1, got ",
              cfg_.virtualNodes);
}

std::uint64_t
HashRing::hashKey(const std::string &key)
{
    return fmix64(fnv1a(key));
}

void
HashRing::addNode(const std::string &node)
{
    if (node.empty())
        fatal("HashRing::addNode: empty node name");
    if (!members_.insert(node).second)
        fatal("HashRing::addNode: duplicate node '", node, "'");
    for (int k = 0; k < cfg_.virtualNodes; ++k) {
        // On a point collision the name-ordered winner keeps the slot,
        // independent of insertion order, so the ring stays a pure
        // function of the node set.
        const std::uint64_t point = pointHash(node, k);
        auto [it, inserted] = ring_.emplace(point, node);
        if (!inserted && node < it->second)
            it->second = node;
    }
}

void
HashRing::removeNode(const std::string &node)
{
    if (members_.erase(node) == 0)
        fatal("HashRing::removeNode: unknown node '", node, "'");
    for (int k = 0; k < cfg_.virtualNodes; ++k) {
        const auto it = ring_.find(pointHash(node, k));
        if (it == ring_.end())
            continue;
        // A collision slot may be owned by the name-ordered winner;
        // re-resolve it among the remaining colliders (rebuilding from
        // the member set keeps removal history-independent).
        ring_.erase(it);
    }
    // Re-add any points of surviving members that `node` had shadowed
    // via the collision rule above.
    for (const std::string &member : members_) {
        for (int k = 0; k < cfg_.virtualNodes; ++k) {
            const std::uint64_t point = pointHash(member, k);
            auto [it, inserted] = ring_.emplace(point, member);
            if (!inserted && member < it->second)
                it->second = member;
        }
    }
}

bool
HashRing::hasNode(const std::string &node) const
{
    return members_.count(node) != 0;
}

std::vector<std::string>
HashRing::nodes() const
{
    return {members_.begin(), members_.end()};
}

const std::string &
HashRing::nodeFor(const std::string &key) const
{
    if (ring_.empty())
        fatal("HashRing::nodeFor: empty ring");
    auto it = ring_.lower_bound(hashKey(key));
    if (it == ring_.end())
        it = ring_.begin(); // wrap past the top of the ring
    return it->second;
}

std::vector<std::string>
HashRing::replicasFor(const std::string &key, std::size_t replicas) const
{
    if (ring_.empty())
        fatal("HashRing::replicasFor: empty ring");
    std::vector<std::string> group;
    const std::size_t want = std::min(replicas, members_.size());
    auto it = ring_.lower_bound(hashKey(key));
    // Walk clockwise collecting distinct nodes; bounded by one full
    // lap, which visits every virtual node once.
    for (std::size_t step = 0; step < ring_.size() && group.size() < want;
         ++step, ++it) {
        if (it == ring_.end())
            it = ring_.begin();
        bool seen = false;
        for (const std::string &g : group)
            seen = seen || g == it->second;
        if (!seen)
            group.push_back(it->second);
    }
    return group;
}

std::uint64_t
HashRing::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= kFnvPrime;
        }
    };
    mix(static_cast<std::uint64_t>(cfg_.virtualNodes));
    mix(ring_.size());
    for (const auto &[point, node] : ring_) {
        mix(point);
        h = fnv1a(node, h);
    }
    return h;
}

} // namespace vboost::cluster
