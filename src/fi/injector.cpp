#include "fi/injector.hpp"

#include <bit>
#include <utility>

#include "common/logging.hpp"
#include "dnn/backend/backend.hpp"
#include "dnn/quantize.hpp"

namespace vboost::fi {

namespace {

/**
 * Corrupt one staged layer and decode it back to floats in a single
 * backend pass (the fused corrupt-and-infer kernel, DESIGN.md §12):
 * bits of `q.words` live at region_base + ((start_bit + k) mod
 * region_bits) in the cell space — staged tiles wrap around the
 * physical memory. With fail_prob <= 0 this is the pure quantization
 * round-trip untargeted layers take.
 */
std::uint64_t
corruptLayerFused(const dnn::Backend &backend, dnn::QuantizedTensor &q,
                  dnn::Tensor &out, const sram::VulnerabilityMap &map,
                  std::uint64_t region_base, std::uint64_t region_bits,
                  std::uint64_t start_bit, sram::FaultParams params,
                  Rng &rng)
{
    return backend.applyFaultMapDequant(
        q.words, q.codec, out.data(), map,
        {region_base, region_bits, start_bit}, params, rng);
}

} // namespace

std::uint64_t
corruptNetwork(dnn::Network &dst, dnn::Network &src,
               const sram::VulnerabilityMap &map, double fail_prob,
               const InjectionSpec &spec, const MemoryLayout &layout,
               Rng &rng)
{
    dst.copyParamsFrom(src);

    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();
    if (src_weights.size() != dst_weights.size())
        fatal("corruptNetwork: network structure mismatch");
    if (spec.onlyLayer >= static_cast<int>(src_weights.size()))
        fatal("corruptNetwork: layer index ", spec.onlyLayer,
              " out of range (", src_weights.size(), " weight layers)");

    if (!spec.injectWeights || fail_prob <= 0.0)
        return 0;

    const dnn::Backend &backend = dnn::activeBackend();
    std::uint64_t flipped = 0;
    std::uint64_t bit_cursor = 0;
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        const std::uint64_t layer_bits = q.words.size() * 16ull;
        const bool targeted =
            spec.onlyLayer < 0 || spec.onlyLayer == static_cast<int>(l);
        // All layers round-trip quantization (the accelerator computes
        // on int16 storage either way); only targeted layers get
        // faults (fail_prob 0 makes the fused kernel a pure decode).
        dnn::Tensor decoded(q.shape);
        flipped += corruptLayerFused(
            backend, q, decoded, map, 0, layout.weightRegionBits,
            bit_cursor, {targeted ? fail_prob : 0.0, spec.flipProb}, rng);
        *dst_weights[l].value = std::move(decoded);
        bit_cursor += layer_bits;
    }
    return flipped;
}

std::uint64_t
corruptNetworkPerLayer(dnn::Network &dst, dnn::Network &src,
                       const sram::VulnerabilityMap &map,
                       const std::vector<double> &fail_prob_by_layer,
                       double flip_prob, const MemoryLayout &layout,
                       Rng &rng)
{
    dst.copyParamsFrom(src);
    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();
    if (fail_prob_by_layer.size() != src_weights.size())
        fatal("corruptNetworkPerLayer: expected ", src_weights.size(),
              " per-layer probabilities, got ", fail_prob_by_layer.size());

    const dnn::Backend &backend = dnn::activeBackend();
    std::uint64_t flipped = 0;
    std::uint64_t bit_cursor = 0;
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        const std::uint64_t layer_bits = q.words.size() * 16ull;
        dnn::Tensor decoded(q.shape);
        flipped += corruptLayerFused(
            backend, q, decoded, map, 0, layout.weightRegionBits,
            bit_cursor, {fail_prob_by_layer[l], flip_prob}, rng);
        *dst_weights[l].value = std::move(decoded);
        bit_cursor += layer_bits;
    }
    return flipped;
}

std::uint64_t
corruptNetworkEcc(dnn::Network &dst, dnn::Network &src,
                  const sram::VulnerabilityMap &map, double fail_prob,
                  double flip_prob, const MemoryLayout &layout, Rng &rng,
                  sram::EccStats *stats)
{
    dst.copyParamsFrom(src);
    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();

    const dnn::Backend &backend = dnn::activeBackend();
    std::uint64_t flipped = 0;
    std::uint64_t bit_cursor = 0;   // data-bit cursor (weight region)
    std::uint64_t check_cursor = 0; // check-bit cursor (parity region)
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        // Process 64-bit groups of four int16 words; the tail group is
        // zero-padded (as a real ECC memory would pad the row).
        for (std::size_t g = 0; g < q.words.size(); g += 4) {
            std::uint64_t word = 0;
            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                word |= static_cast<std::uint64_t>(
                            static_cast<std::uint16_t>(q.words[g + k]))
                        << (16 * k);
            std::uint8_t check = sram::SecdedCodec::encode(word);

            // Corrupt the 64 data cells, then the 8 check cells (their
            // own region); RNG draws interleave per group, in cell
            // order, exactly as the backend contract specifies.
            flipped += backend.applyFaultMapBits(
                word, 64, map, {0, layout.weightRegionBits, bit_cursor},
                {fail_prob, flip_prob}, rng);
            std::uint64_t check_bits = check;
            flipped += backend.applyFaultMapBits(
                check_bits, 8, map,
                {layout.parityRegionBase(), layout.parityRegionBits(),
                 check_cursor},
                {fail_prob, flip_prob}, rng);
            check = static_cast<std::uint8_t>(check_bits);
            bit_cursor += 64;
            check_cursor += 8;

            const auto decoded = sram::SecdedCodec::decode(word, check);
            if (stats)
                stats->record(decoded.outcome);
            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                q.words[g + k] = static_cast<std::int16_t>(
                    static_cast<std::uint16_t>(decoded.data >> (16 * k)));
        }
        *dst_weights[l].value = dnn::dequantize(q);
    }
    return flipped;
}

std::uint64_t
corruptNetworkResilient(dnn::Network &dst, dnn::Network &src,
                        resilience::ResilientMemory &rmem, Volt vdd,
                        const sram::VulnerabilityMap &map)
{
    dst.copyParamsFrom(src);
    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();
    if (src_weights.size() != dst_weights.size())
        fatal("corruptNetworkResilient: network structure mismatch");

    const std::uint32_t capacity = rmem.memory().words();
    std::uint64_t residual = 0;
    std::uint64_t group_cursor = 0; // 64-bit words staged so far
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        // Stage 64-bit groups of four int16 words through the memory;
        // the tail group is zero-padded like a real padded row.
        for (std::size_t g = 0; g < q.words.size(); g += 4) {
            std::uint64_t word = 0;
            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                word |= static_cast<std::uint64_t>(
                            static_cast<std::uint16_t>(q.words[g + k]))
                        << (16 * k);

            const auto addr =
                static_cast<std::uint32_t>(group_cursor % capacity);
            ++group_cursor;
            rmem.writeWord(addr, word, vdd);
            const resilience::ReadOutcome out =
                rmem.readWord(addr, vdd, map);
            residual += static_cast<std::uint64_t>(
                std::popcount(word ^ out.data));

            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                q.words[g + k] = static_cast<std::int16_t>(
                    static_cast<std::uint16_t>(out.data >> (16 * k)));
        }
        *dst_weights[l].value = dnn::dequantize(q);
    }
    return residual;
}

dnn::Tensor
corruptInputs(const dnn::Tensor &images, const sram::VulnerabilityMap &map,
              double fail_prob, double flip_prob,
              const MemoryLayout &layout, Rng &rng)
{
    auto q = dnn::quantize(images);
    if (fail_prob > 0.0) {
        // Each image is staged through the same physical input memory:
        // image i's bits start where a fresh staging would place them
        // (offset 0 of the region), so all images see the same cells.
        const dnn::Backend &backend = dnn::activeBackend();
        const int batch = images.dim(0);
        const std::size_t per_image = images.numel() /
                                      static_cast<std::size_t>(batch);
        for (int i = 0; i < batch; ++i) {
            backend.applyFaultMap(
                std::span<std::int16_t>(
                    q.words.data() +
                        per_image * static_cast<std::size_t>(i),
                    per_image),
                map,
                {layout.inputRegionBase(), layout.inputRegionBits, 0},
                {fail_prob, flip_prob}, rng);
        }
    }
    return dnn::dequantize(q);
}

} // namespace vboost::fi
