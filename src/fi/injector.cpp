#include "fi/injector.hpp"

#include <bit>

#include "common/logging.hpp"
#include "dnn/quantize.hpp"

namespace vboost::fi {

namespace {

/**
 * Corrupt 16-bit words whose bits live at
 * region_base + ((start_bit + k) mod region_bits) in the cell space:
 * staged tiles wrap around the physical memory.
 */
std::uint64_t
corruptWrapped(std::vector<std::int16_t> &words,
               const sram::VulnerabilityMap &map, std::uint64_t region_base,
               std::uint64_t region_bits, std::uint64_t start_bit,
               sram::FaultParams params, Rng &rng)
{
    if (params.failProb <= 0.0 || params.flipProb <= 0.0)
        return 0;
    std::uint64_t flipped = 0;
    std::uint64_t bit = start_bit % region_bits;
    for (auto &word : words) {
        auto raw = static_cast<std::uint16_t>(word);
        for (int b = 0; b < 16; ++b) {
            const std::uint64_t cell = region_base + bit;
            if (map.isFaulty(cell, params.failProb) &&
                rng.bernoulli(params.flipProb)) {
                raw ^= static_cast<std::uint16_t>(1u << b);
                ++flipped;
            }
            if (++bit == region_bits)
                bit = 0;
        }
        word = static_cast<std::int16_t>(raw);
    }
    return flipped;
}

} // namespace

std::uint64_t
corruptNetwork(dnn::Network &dst, dnn::Network &src,
               const sram::VulnerabilityMap &map, double fail_prob,
               const InjectionSpec &spec, const MemoryLayout &layout,
               Rng &rng)
{
    dst.copyParamsFrom(src);

    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();
    if (src_weights.size() != dst_weights.size())
        fatal("corruptNetwork: network structure mismatch");
    if (spec.onlyLayer >= static_cast<int>(src_weights.size()))
        fatal("corruptNetwork: layer index ", spec.onlyLayer,
              " out of range (", src_weights.size(), " weight layers)");

    if (!spec.injectWeights || fail_prob <= 0.0)
        return 0;

    std::uint64_t flipped = 0;
    std::uint64_t bit_cursor = 0;
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        const std::uint64_t layer_bits = q.words.size() * 16ull;
        const bool targeted =
            spec.onlyLayer < 0 || spec.onlyLayer == static_cast<int>(l);
        if (targeted) {
            flipped += corruptWrapped(q.words, map, 0,
                                      layout.weightRegionBits, bit_cursor,
                                      {fail_prob, spec.flipProb}, rng);
        }
        // All layers round-trip quantization (the accelerator computes
        // on int16 storage either way); only targeted layers get
        // faults.
        *dst_weights[l].value = dnn::dequantize(q);
        bit_cursor += layer_bits;
    }
    return flipped;
}

std::uint64_t
corruptNetworkPerLayer(dnn::Network &dst, dnn::Network &src,
                       const sram::VulnerabilityMap &map,
                       const std::vector<double> &fail_prob_by_layer,
                       double flip_prob, const MemoryLayout &layout,
                       Rng &rng)
{
    dst.copyParamsFrom(src);
    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();
    if (fail_prob_by_layer.size() != src_weights.size())
        fatal("corruptNetworkPerLayer: expected ", src_weights.size(),
              " per-layer probabilities, got ", fail_prob_by_layer.size());

    std::uint64_t flipped = 0;
    std::uint64_t bit_cursor = 0;
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        const std::uint64_t layer_bits = q.words.size() * 16ull;
        flipped += corruptWrapped(q.words, map, 0, layout.weightRegionBits,
                                  bit_cursor,
                                  {fail_prob_by_layer[l], flip_prob}, rng);
        *dst_weights[l].value = dnn::dequantize(q);
        bit_cursor += layer_bits;
    }
    return flipped;
}

std::uint64_t
corruptNetworkEcc(dnn::Network &dst, dnn::Network &src,
                  const sram::VulnerabilityMap &map, double fail_prob,
                  double flip_prob, const MemoryLayout &layout, Rng &rng,
                  sram::EccStats *stats)
{
    dst.copyParamsFrom(src);
    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();

    std::uint64_t flipped = 0;
    std::uint64_t bit_cursor = 0;   // data-bit cursor (weight region)
    std::uint64_t check_cursor = 0; // check-bit cursor (parity region)
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        // Process 64-bit groups of four int16 words; the tail group is
        // zero-padded (as a real ECC memory would pad the row).
        for (std::size_t g = 0; g < q.words.size(); g += 4) {
            std::uint64_t word = 0;
            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                word |= static_cast<std::uint64_t>(
                            static_cast<std::uint16_t>(q.words[g + k]))
                        << (16 * k);
            std::uint8_t check = sram::SecdedCodec::encode(word);

            // Corrupt the 64 data cells.
            for (int b = 0; b < 64; ++b) {
                const std::uint64_t cell =
                    (bit_cursor + static_cast<std::uint64_t>(b)) %
                    layout.weightRegionBits;
                if (map.isFaulty(cell, fail_prob) &&
                    rng.bernoulli(flip_prob)) {
                    word ^= 1ull << b;
                    ++flipped;
                }
            }
            // Corrupt the 8 check cells (their own region).
            for (int b = 0; b < 8; ++b) {
                const std::uint64_t cell =
                    layout.parityRegionBase() +
                    (check_cursor + static_cast<std::uint64_t>(b)) %
                        layout.parityRegionBits();
                if (map.isFaulty(cell, fail_prob) &&
                    rng.bernoulli(flip_prob)) {
                    check = static_cast<std::uint8_t>(check ^ (1u << b));
                    ++flipped;
                }
            }
            bit_cursor += 64;
            check_cursor += 8;

            const auto decoded = sram::SecdedCodec::decode(word, check);
            if (stats)
                stats->record(decoded.outcome);
            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                q.words[g + k] = static_cast<std::int16_t>(
                    static_cast<std::uint16_t>(decoded.data >> (16 * k)));
        }
        *dst_weights[l].value = dnn::dequantize(q);
    }
    return flipped;
}

std::uint64_t
corruptNetworkResilient(dnn::Network &dst, dnn::Network &src,
                        resilience::ResilientMemory &rmem, Volt vdd,
                        const sram::VulnerabilityMap &map)
{
    dst.copyParamsFrom(src);
    auto src_weights = src.weightParams();
    auto dst_weights = dst.weightParams();
    if (src_weights.size() != dst_weights.size())
        fatal("corruptNetworkResilient: network structure mismatch");

    const std::uint32_t capacity = rmem.memory().words();
    std::uint64_t residual = 0;
    std::uint64_t group_cursor = 0; // 64-bit words staged so far
    for (std::size_t l = 0; l < src_weights.size(); ++l) {
        auto q = dnn::quantize(*src_weights[l].value);
        // Stage 64-bit groups of four int16 words through the memory;
        // the tail group is zero-padded like a real padded row.
        for (std::size_t g = 0; g < q.words.size(); g += 4) {
            std::uint64_t word = 0;
            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                word |= static_cast<std::uint64_t>(
                            static_cast<std::uint16_t>(q.words[g + k]))
                        << (16 * k);

            const auto addr =
                static_cast<std::uint32_t>(group_cursor % capacity);
            ++group_cursor;
            rmem.writeWord(addr, word, vdd);
            const resilience::ReadOutcome out =
                rmem.readWord(addr, vdd, map);
            residual += static_cast<std::uint64_t>(
                std::popcount(word ^ out.data));

            for (std::size_t k = 0; k < 4 && g + k < q.words.size(); ++k)
                q.words[g + k] = static_cast<std::int16_t>(
                    static_cast<std::uint16_t>(out.data >> (16 * k)));
        }
        *dst_weights[l].value = dnn::dequantize(q);
    }
    return residual;
}

dnn::Tensor
corruptInputs(const dnn::Tensor &images, const sram::VulnerabilityMap &map,
              double fail_prob, double flip_prob,
              const MemoryLayout &layout, Rng &rng)
{
    auto q = dnn::quantize(images);
    if (fail_prob > 0.0) {
        // Each image is staged through the same physical input memory:
        // image i's bits start where a fresh staging would place them
        // (offset 0 of the region), so all images see the same cells.
        const int batch = images.dim(0);
        const std::size_t per_image = images.numel() /
                                      static_cast<std::size_t>(batch);
        for (int i = 0; i < batch; ++i) {
            std::vector<std::int16_t> row(
                q.words.begin() + static_cast<long>(per_image *
                                                    static_cast<std::size_t>(
                                                        i)),
                q.words.begin() + static_cast<long>(per_image *
                                                    static_cast<std::size_t>(
                                                        i + 1)));
            corruptWrapped(row, map, layout.inputRegionBase(),
                           layout.inputRegionBits, 0,
                           {fail_prob, flip_prob}, rng);
            std::copy(row.begin(), row.end(),
                      q.words.begin() + static_cast<long>(
                                            per_image *
                                            static_cast<std::size_t>(i)));
        }
    }
    return dnn::dequantize(q);
}

} // namespace vboost::fi
