/**
 * @file
 * Fault injection into a trained network's int16 storage image: the
 * C++ counterpart of the paper's TensorFlow fault-injection framework
 * (Sec. 2 and Sec. 5.1). Weights (all layers, or one selected layer)
 * and/or input images are quantized to their SRAM storage words,
 * corrupted under a vulnerability map at the bit failure probability
 * of the operating voltage, and dequantized for inference.
 *
 * Cell layout mirrors the accelerator: weight bits map into the weight
 * memory's cell region modulo its capacity (layers are staged through
 * the same physical SRAM), and input bits map into the input memory's
 * disjoint cell region, so every Monte-Carlo map corrupts exactly the
 * cells a real staged execution would exercise.
 */

#ifndef VBOOST_FI_INJECTOR_HPP
#define VBOOST_FI_INJECTOR_HPP

#include <cstdint>
#include <vector>

#include "dnn/network.hpp"
#include "resilience/resilient_memory.hpp"
#include "sram/ecc.hpp"
#include "sram/fault_map.hpp"

namespace vboost::fi {

/** What to inject faults into. */
struct InjectionSpec
{
    /** Corrupt weight tensors. */
    bool injectWeights = true;
    /** Restrict weight corruption to this weight-layer index
     *  (-1 = all layers). Index k is the k-th weight tensor. */
    int onlyLayer = -1;
    /** Corrupt the input images. */
    bool injectInputs = false;
    /** Per-read flip probability of a faulty cell (paper: 0.5). */
    double flipProb = 0.5;

    /** Named presets matching the paper's Fig. 2 curves. */
    static InjectionSpec allWeights() { return {}; }
    static InjectionSpec singleLayer(int layer)
    { return {true, layer, false, 0.5}; }
    static InjectionSpec inputsOnly()
    { return {false, -1, true, 0.5}; }
};

/** Physical cell regions the logical data maps onto. */
struct MemoryLayout
{
    /** Weight memory capacity in bits (128 KB for Dante). */
    std::uint64_t weightRegionBits = 128ull * 1024 * 8;
    /** Input memory capacity in bits (16 KB for Dante). */
    std::uint64_t inputRegionBits = 16ull * 1024 * 8;

    /** First cell of the input region (after the weight region). */
    std::uint64_t inputRegionBase() const { return weightRegionBits; }

    /** First cell of the ECC check-bit region (used only by the ECC
     *  ablation; sized at 1/8 of the weight region per SECDED). */
    std::uint64_t parityRegionBase() const
    { return weightRegionBits + inputRegionBits; }

    /** ECC check-bit region size in bits. */
    std::uint64_t parityRegionBits() const
    { return weightRegionBits / 8; }
};

/**
 * Produce a corrupted copy of `src`'s parameters in `dst` (both must
 * be structurally identical; build `dst` with the same zoo function).
 * Biases and non-targeted layers are copied verbatim through their
 * quantized round trip so the only difference is the injected faults.
 *
 * @return number of bit flips applied.
 */
std::uint64_t corruptNetwork(dnn::Network &dst, dnn::Network &src,
                             const sram::VulnerabilityMap &map,
                             double fail_prob, const InjectionSpec &spec,
                             const MemoryLayout &layout, Rng &rng);

/**
 * Per-layer variant of corruptNetwork: weight layer k is corrupted at
 * fail_prob_by_layer[k]. This models the paper's differential boost
 * configurations (Table 2, Boost_diff1/Boost_diff2), where each
 * layer's weight accesses happen at a different boosted voltage and
 * therefore a different bit failure probability.
 *
 * @return number of bit flips applied.
 */
std::uint64_t corruptNetworkPerLayer(
    dnn::Network &dst, dnn::Network &src,
    const sram::VulnerabilityMap &map,
    const std::vector<double> &fail_prob_by_layer, double flip_prob,
    const MemoryLayout &layout, Rng &rng);

/**
 * SECDED-protected variant of corruptNetwork (all-weights target):
 * every 64-bit group of weight storage is protected by Hamming(72,64)
 * check bits that live in their own (equally faulty) cell region.
 * Single-bit errors per codeword are corrected; double errors are
 * detected but passed through; triple+ errors may miscorrect. This is
 * the conventional low-voltage mitigation the ECC ablation bench
 * compares against boosting.
 *
 * @param stats optional decode statistics output.
 * @return number of raw bit flips applied (before correction).
 */
std::uint64_t corruptNetworkEcc(dnn::Network &dst, dnn::Network &src,
                                const sram::VulnerabilityMap &map,
                                double fail_prob, double flip_prob,
                                const MemoryLayout &layout, Rng &rng,
                                sram::EccStats *stats = nullptr);

/**
 * Closed-loop variant of corruptNetworkEcc: the weight image is staged
 * word by word through a ResilientMemory — write, then read back
 * through the full resilient pipeline (ECC decode, bounded retry with
 * boost escalation, standing-level raises, row sparing) at supply
 * `vdd`. The decoded data feeds inference; retry / escalation /
 * quarantine counters and energy accumulate inside `rmem` (snapshot()
 * after the call). Layers wrap through the memory modulo its capacity,
 * mirroring the staged execution of the other injectors.
 *
 * @return residual flipped bits (after correction and retries) —
 *         the corruption that actually reaches inference.
 */
std::uint64_t corruptNetworkResilient(dnn::Network &dst, dnn::Network &src,
                                      resilience::ResilientMemory &rmem,
                                      Volt vdd,
                                      const sram::VulnerabilityMap &map);

/**
 * Corrupt a batch of input images through the input-memory cell
 * region. Every image is staged through the same physical SRAM, so
 * image bits map modulo the input region size.
 *
 * @return corrupted copy of the batch.
 */
dnn::Tensor corruptInputs(const dnn::Tensor &images,
                          const sram::VulnerabilityMap &map,
                          double fail_prob, double flip_prob,
                          const MemoryLayout &layout, Rng &rng);

} // namespace vboost::fi

#endif // VBOOST_FI_INJECTOR_HPP
