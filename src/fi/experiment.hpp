/**
 * @file
 * Monte-Carlo accuracy experiments (paper Sec. 5.1): for each
 * operating point, generate N independent fault maps, corrupt the
 * network/inputs under each, evaluate inference accuracy on the test
 * set, and report the mean (the paper averages 100 maps). The voltage
 * sweep variant converts voltages to failure probabilities through a
 * FailureRateModel first — exactly the pipeline of Fig. 11.
 *
 * Execution model: fault maps are evaluated in parallel on the shared
 * work-stealing pool. Each worker slot owns a scratch-network clone,
 * each map m keeps its counter-based seed (VulnerabilityMap(seed, m)
 * and Rng::split), and per-map statistics are reduced in map order
 * with RunningStats::merge — so results are bitwise identical for any
 * thread count, including the serial numThreads = 1 path.
 */

#ifndef VBOOST_FI_EXPERIMENT_HPP
#define VBOOST_FI_EXPERIMENT_HPP

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/network.hpp"
#include "fi/injector.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "resilience/policy.hpp"
#include "resilience/resilient_memory.hpp"
#include "sram/failure_model.hpp"
#include "timing/replay_policy.hpp"
#include "timing/speculative_datapath.hpp"
#include "timing/timing_model.hpp"

namespace vboost::fi {

/** Monte-Carlo experiment configuration. */
struct ExperimentConfig
{
    /** Independent fault maps per operating point (paper: 100). */
    int numMaps = 20;
    /** Base seed; map m uses VulnerabilityMap(seed, m). */
    std::uint64_t seed = 42;
    /** Test samples evaluated per map (0 = whole test set). */
    std::size_t maxTestSamples = 400;
    /** Cell layout of the modeled memories. */
    MemoryLayout layout;
    /** Worker threads for the Monte-Carlo loops
     *  (0 = hardware_concurrency, 1 = serial). Any value produces
     *  bitwise identical results. */
    int numThreads = 0;
    /** Spatial structure of the fault maps (MoRS-lite clustering vs
     *  the i.i.d. baseline). */
    sram::MapModel mapModel = sram::MapModel::Iid;
    /** Defect-process parameters under MapModel::Clustered. */
    sram::ClusterParams cluster;
};

/** Logic-side timing-fault configuration (DESIGN.md §13). */
struct TimingInjection
{
    /** PE pipeline structure / path-slack parameters. */
    timing::TimingParams params;
    /** Replay + escalation policy. */
    timing::ReplayPolicy policy = timing::ReplayPolicy::razor();
    /** Initial standing logic voltage. */
    Volt vLogic{0.36};
    /** Target datapath clock (the speculative clock). */
    Hertz clock{50e6};
};

/** Accuracy statistics at one operating point. */
struct AccuracyPoint
{
    /** Supply voltage (0 when swept by failure probability). */
    Volt voltage{0.0};
    /** Bit failure probability applied. */
    double failProb = 0.0;
    /** Mean accuracy across fault maps. */
    double meanAccuracy = 0.0;
    /** Stddev of accuracy across fault maps. */
    double stddevAccuracy = 0.0;
    /** Worst map. */
    double minAccuracy = 0.0;
    /** Best map. */
    double maxAccuracy = 0.0;
    /** Mean bit flips applied per map. */
    double meanBitFlips = 0.0;
};

/** Accuracy plus resilience-pipeline accounting at one voltage. */
struct ResilientAccuracyPoint
{
    /** Accuracy statistics (meanBitFlips = residual flips that reach
     *  inference after correction and retries). */
    AccuracyPoint point;
    /** Pipeline counters summed across maps (digests chain in map
     *  order). */
    resilience::ResilienceStats stats;
    /** Mean per-map SRAM energy: bank access + boost + spare rows. */
    Joule meanAccessEnergy{0.0};
    /** Mean per-map latency added by retry attempts. */
    Second meanRetryLatency{0.0};
};

/** Accuracy plus timing-speculation accounting at one V_logic. */
struct TimingAccuracyPoint
{
    /** Accuracy statistics (voltage = the logic rail; failProb = the
     *  per-op violation probability at the initial rail). */
    AccuracyPoint point;
    /** Datapath counters summed across maps (replay digests chain in
     *  map order). */
    timing::TimingStats stats;
    /** Mean per-map datapath dynamic energy (all issues). */
    Joule meanLogicEnergy{0.0};
    /** Mean per-map latency added by replays and recovery bubbles. */
    Second meanReplayLatency{0.0};
    /** Effective-period stretch (worst-case clocking only; 1.0 for a
     *  speculative policy). */
    double cycleStretch = 1.0;
    /** The safe fallback rail of the escalation ladder. */
    Volt safeVoltage{0.0};
};

/** Joint SRAM + timing fault injection at one (V_sram, V_logic). */
struct CombinedAccuracyPoint
{
    /** Accuracy statistics (voltage = the SRAM rail). */
    AccuracyPoint point;
    /** Resilient-SRAM pipeline counters, map-order merged. */
    resilience::ResilienceStats sram;
    /** Timing-datapath counters, map-order merged. */
    timing::TimingStats timing;
    /** Mean per-map SRAM energy (access + boost + spares). */
    Joule meanSramEnergy{0.0};
    /** Mean per-map datapath dynamic energy. */
    Joule meanLogicEnergy{0.0};
    /** Mean per-map retry latency (SRAM side). */
    Second meanRetryLatency{0.0};
    /** Mean per-map replay + bubble latency (logic side). */
    Second meanReplayLatency{0.0};
    /** Effective-period stretch of the datapath clock. */
    double cycleStretch = 1.0;
    /** Safe fallback rail of the escalation ladder. */
    Volt safeVoltage{0.0};
};

/**
 * Runs Monte-Carlo fault-injection accuracy experiments on a trained
 * network. Scratch networks are cloned internally (one per worker
 * thread); the caller's instance is never modified.
 */
class FaultInjectionRunner
{
  public:
    /**
     * @param net trained network (the golden parameter source; must
     *        outlive the runner).
     * @param test_set evaluation data.
     * @param cfg Monte-Carlo configuration.
     */
    FaultInjectionRunner(dnn::Network &net, const dnn::Dataset &test_set,
                         ExperimentConfig cfg = {});

    /** Accuracy with fault-free int16 quantization (the ceiling). */
    double baselineAccuracy();

    /** Monte-Carlo accuracy at one bit failure probability. */
    AccuracyPoint run(double fail_prob, const InjectionSpec &spec);

    /**
     * Monte-Carlo accuracy with a distinct failure probability per
     * weight layer (differential boost configurations of Table 2).
     */
    AccuracyPoint runPerLayer(const std::vector<double> &fail_by_layer,
                              double flip_prob = 0.5);

    /**
     * Monte-Carlo accuracy with SECDED ECC protecting the weight
     * storage (the ECC-vs-boosting ablation). Aggregated decode
     * statistics are returned through `stats` when non-null.
     */
    AccuracyPoint runWithEcc(double fail_prob, double flip_prob = 0.5,
                             sram::EccStats *stats = nullptr);

    /**
     * Monte-Carlo accuracy with the full resilient SRAM pipeline
     * (DESIGN.md §8): each map builds a fresh banked weight memory
     * wrapped in a ResilientMemory under `policy`, stages the weight
     * image through it at supply `vdd`, and evaluates on the decoded
     * read-back. policy.mode selects the open-loop baseline (single
     * decode, no reaction) or the closed loop (bounded retry with
     * boost escalation, standing raises, row sparing).
     */
    ResilientAccuracyPoint
    runResilient(Volt vdd, const core::SimContext &ctx,
                 const resilience::ResiliencePolicy &policy);

    /**
     * Monte-Carlo accuracy with *timing* faults only (DESIGN.md §13):
     * weights stage fault-free through the int16 round trip, but
     * every layer-output element is one op on a timing-speculative
     * datapath at `inj.vLogic`. Ops whose replay budget exhausts
     * commit a corrupted output (one deterministic bit flip in the
     * element's int16 representation). The datapath evolves serially
     * within a map (monitors, ladder), fresh per map.
     */
    TimingAccuracyPoint runTiming(const core::SimContext &ctx,
                                  const TimingInjection &inj);

    /**
     * Joint injection: SRAM faults through the resilient pipeline at
     * `v_sram` (as runResilient) plus timing faults on the datapath
     * (as runTiming), in the same inference.
     */
    CombinedAccuracyPoint
    runCombined(Volt v_sram, const core::SimContext &ctx,
                const resilience::ResiliencePolicy &policy,
                const TimingInjection &inj);

    /** Accuracy at a supply voltage (failure prob from the model). */
    AccuracyPoint runAtVoltage(Volt v, const sram::FailureRateModel &model,
                               const InjectionSpec &spec);

    /**
     * Sweep a list of voltages. Parallelizes over the full
     * (voltage x map) grid, so even a sweep of few voltages with few
     * maps each saturates the machine.
     */
    std::vector<AccuracyPoint>
    sweepVoltage(const std::vector<Volt> &voltages,
                 const sram::FailureRateModel &model,
                 const InjectionSpec &spec);

    const ExperimentConfig &config() const { return cfg_; }

    /**
     * Attach a metrics + trace sink (DESIGN.md §11). Every subsequent
     * experiment publishes per-trial spans (`fi.<kind>` on a virtual
     * trial clock under `trace_pid`), injection counters
     * (`fi.trials{kind=..}`, `fi.bit_flips`), per-trial accuracy
     * histograms and — for runResilient — the merged ResilientMemory
     * metrics. `labels` is folded into every metric. All recording
     * happens on the serial reduction path in map order, so the output
     * is thread-count invariant (§7). Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o,
                             std::uint64_t trace_pid = 0,
                             obs::Labels labels = {});

  private:
    /** Outcome of evaluating one fault map. */
    struct MapResult
    {
        double accuracy = 0.0;
        std::uint64_t bitFlips = 0;
        sram::EccStats ecc;
        /** Resilient-pipeline counters (runResilient only). */
        resilience::ResilienceStats res;
        /** Timing-datapath counters (runTiming/runCombined only). */
        timing::TimingStats tim;
        /** Per-map SRAM energy incl. resilience (runResilient only). */
        Joule resEnergy{0.0};
        /** Per-map ResilientMemory metrics export (runResilient with
         *  observability attached only); merged in map order. */
        obs::MetricsRegistry metrics;
    };

    /**
     * Evaluate `jobs` fault-map jobs in parallel; job j calls
     * evaluate(j, scratch) with a worker-exclusive scratch clone and
     * deposits into a results slot. Returns per-job results in job
     * order regardless of scheduling.
     */
    std::vector<MapResult> runMaps(
        std::size_t jobs,
        const std::function<MapResult(std::size_t, dnn::Network &)>
            &evaluate);

    /** Map-order (deterministic) reduction of per-map results. */
    static AccuracyPoint reduce(const std::vector<MapResult> &results,
                                double fail_prob,
                                sram::EccStats *stats = nullptr);

    /** Grow the per-worker scratch-clone pool to `count` networks. */
    void ensureScratch(unsigned count);

    /** Construct fault map m under cfg_.mapModel (§7 counter seeds). */
    sram::VulnerabilityMap makeMap(std::uint64_t m) const;

    /** Merge the attached base labels under `extra` (extra wins). */
    obs::Labels withBase(obs::Labels extra) const;

    /** Publish per-trial counters, accuracy histogram and spans for
     *  one experiment (serial, map order). */
    void recordTrials(const std::string &kind,
                      const std::vector<MapResult> &results);

    dnn::Network &net_;
    dnn::Dataset evalSet_;
    ExperimentConfig cfg_;
    /** One scratch clone per worker slot, created lazily. */
    std::vector<std::unique_ptr<dnn::Network>> scratch_;

    /** Optional metrics/trace sink (never owned). */
    obs::Observability *obs_ = nullptr;
    std::uint64_t obsPid_ = 0;
    obs::Labels obsLabels_;
    /** Virtual clock advanced one tick per recorded trial. */
    obs::VirtualClock trialClock_;
};

} // namespace vboost::fi

#endif // VBOOST_FI_EXPERIMENT_HPP
