/**
 * @file
 * Fault-aware training (the paper's related work [20-22]: training in
 * the presence of faults improves model resilience; the paper notes
 * its boosting "mitigates the need for fault-aware training" but the
 * two compose). Each minibatch runs forward/backward through a
 * *corrupted* copy of the weights — quantize, flip bits under a fresh
 * vulnerability map at the training failure probability, dequantize —
 * while the SGD update is applied to the clean weights
 * (straight-through estimation). The resulting model tolerates higher
 * bit error rates at deployment, letting the boost controller pick a
 * lower level.
 */

#ifndef VBOOST_FI_FAULT_TRAINING_HPP
#define VBOOST_FI_FAULT_TRAINING_HPP

#include "dnn/trainer.hpp"
#include "fi/injector.hpp"

namespace vboost::fi {

/** Configuration of fault-aware training. */
struct FaultTrainConfig
{
    /** Underlying SGD configuration. */
    dnn::TrainConfig base;
    /** Bit failure probability injected during training (pick the
     *  rate of the intended deployment voltage). */
    double failProb = 5e-3;
    /** Per-read flip probability of a faulty cell. */
    double flipProb = 0.5;
    /** Clean (fault-free) epochs before injection starts; the model
     *  learns the task first, then hardens. */
    int warmupEpochs = 1;
    /** Element-wise gradient clamp (0 = off). Bit flips in high bits
     *  produce outlier activations whose gradients would otherwise
     *  blow up the clean parameters. */
    double gradClip = 0.5;
    /** Projected-SGD weight clamp (0 = off): keeps the deployment
     *  Q-format fixed during training so flip magnitudes stay
     *  bounded. */
    double weightClip = 0.5;
    /** Seed for the per-batch vulnerability maps. */
    std::uint64_t seed = 99;
    /** Cell layout used for the injected faults. */
    MemoryLayout layout;
};

/**
 * SGD with per-minibatch weight fault injection.
 *
 * The network sees a different fault map every batch, so it cannot
 * memorize specific broken cells; it must become robust to the error
 * *rate*.
 */
class FaultAwareTrainer
{
  public:
    explicit FaultAwareTrainer(FaultTrainConfig cfg = {});

    /**
     * Train `net` in place.
     *
     * @param net the network being trained (receives clean updates).
     * @param scratch structurally identical instance that holds the
     *        corrupted weights during each batch.
     * @param train_set training data.
     * @param rng shuffling randomness.
     */
    std::vector<dnn::EpochStats> train(dnn::Network &net,
                                       dnn::Network &scratch,
                                       const dnn::Dataset &train_set,
                                       Rng &rng);

    const FaultTrainConfig &config() const { return cfg_; }

  private:
    FaultTrainConfig cfg_;
};

} // namespace vboost::fi

#endif // VBOOST_FI_FAULT_TRAINING_HPP
