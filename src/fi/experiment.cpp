#include "fi/experiment.hpp"

#include <algorithm>
#include <optional>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "obs/scope.hpp"

namespace vboost::fi {

FaultInjectionRunner::FaultInjectionRunner(dnn::Network &net,
                                           const dnn::Dataset &test_set,
                                           ExperimentConfig cfg)
    : net_(net), cfg_(cfg)
{
    if (cfg_.numMaps < 1)
        fatal("FaultInjectionRunner: at least one fault map required");
    if (cfg_.numThreads < 0)
        fatal("FaultInjectionRunner: negative thread count ",
              cfg_.numThreads);
    if (test_set.size() == 0)
        fatal("FaultInjectionRunner: empty test set");
    std::size_t n = test_set.size();
    if (cfg_.maxTestSamples > 0 && cfg_.maxTestSamples < n)
        n = cfg_.maxTestSamples;
    evalSet_ = test_set.slice(0, n);
}

void
FaultInjectionRunner::attachObservability(obs::Observability *o,
                                          std::uint64_t trace_pid,
                                          obs::Labels labels)
{
    obs_ = o;
    obsPid_ = trace_pid;
    obsLabels_ = std::move(labels);
}

obs::Labels
FaultInjectionRunner::withBase(obs::Labels extra) const
{
    // insert() keeps existing keys, so the explicit labels win over
    // the attached base labels.
    extra.insert(obsLabels_.begin(), obsLabels_.end());
    return extra;
}

void
FaultInjectionRunner::recordTrials(const std::string &kind,
                                   const std::vector<MapResult> &results)
{
    if (!obs_)
        return;
    obs::MetricsRegistry &reg = obs_->metrics;
    const obs::Labels kind_labels = withBase({{"kind", kind}});
    obs::Counter trials = reg.counter("fi.trials", kind_labels);
    obs::Counter flips = reg.counter("fi.bit_flips", kind_labels);
    obs::Histogram accuracy = reg.histogram(
        "fi.trial.accuracy", obs::linearBounds(0.0, 1.0, 21), kind_labels);
    for (const MapResult &r : results) {
        trials.add(1);
        flips.add(r.bitFlips);
        accuracy.observe(r.accuracy);
        // One virtual tick per trial: spans line up in map order on
        // the trial clock regardless of worker scheduling.
        const std::uint64_t ts = trialClock_.now();
        trialClock_.advance(1);
        obs_->trace.complete(
            obsPid_, 0, "fi." + kind, ts, 1,
            {{"accuracy", r.accuracy},
             {"bit_flips", static_cast<double>(r.bitFlips)}});
    }
}

void
FaultInjectionRunner::ensureScratch(unsigned count)
{
    while (scratch_.size() < count)
        scratch_.push_back(
            std::make_unique<dnn::Network>(net_.clone()));
}

std::vector<FaultInjectionRunner::MapResult>
FaultInjectionRunner::runMaps(
    std::size_t jobs,
    const std::function<MapResult(std::size_t, dnn::Network &)> &evaluate)
{
    const unsigned threads =
        ThreadPool::resolveThreads(cfg_.numThreads);
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs, threads));
    ensureScratch(std::max(1u, workers));

    std::vector<MapResult> results(jobs);
    // Job j deposits into results[j]; the dynamic schedule never
    // affects the output because reduction happens in job order.
    parallelFor(jobs, static_cast<int>(workers),
                [&](std::size_t j, unsigned slot) {
                    results[j] = evaluate(j, *scratch_[slot]);
                });
    return results;
}

AccuracyPoint
FaultInjectionRunner::reduce(const std::vector<MapResult> &results,
                             double fail_prob, sram::EccStats *stats)
{
    // Deterministic reduction: one singleton accumulator per map,
    // merged in map order (Chan et al.), so the outcome is a pure
    // function of the map results — not of the thread count.
    RunningStats acc;
    RunningStats flips;
    for (const auto &r : results) {
        RunningStats a, f;
        a.add(r.accuracy);
        f.add(static_cast<double>(r.bitFlips));
        acc.merge(a);
        flips.merge(f);
        if (stats)
            stats->merge(r.ecc);
    }

    AccuracyPoint p;
    p.failProb = fail_prob;
    p.meanAccuracy = acc.mean();
    p.stddevAccuracy = acc.stddev();
    p.minAccuracy = acc.min();
    p.maxAccuracy = acc.max();
    p.meanBitFlips = flips.mean();
    return p;
}

double
FaultInjectionRunner::baselineAccuracy()
{
    // Quantization round trip with no faults: the accelerator's
    // error-free ceiling (what "maximum accuracy" means in Fig. 2).
    ensureScratch(1);
    dnn::Network &scratch = *scratch_[0];
    sram::VulnerabilityMap map(cfg_.seed, 0);
    Rng rng(cfg_.seed);
    InjectionSpec spec;
    spec.injectWeights = true;
    corruptNetwork(scratch, net_, map, /*fail_prob=*/0.0, spec,
                   cfg_.layout, rng);
    return dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
}

AccuracyPoint
FaultInjectionRunner::run(double fail_prob, const InjectionSpec &spec)
{
    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "inject"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            const sram::VulnerabilityMap map(
                cfg_.seed, static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                1000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips = corruptNetwork(scratch, net_, map, fail_prob,
                                        spec, cfg_.layout, rng);
            if (spec.injectInputs) {
                dnn::Tensor corrupted = corruptInputs(
                    evalSet_.images, map, fail_prob, spec.flipProb,
                    cfg_.layout, rng);
                r.accuracy =
                    scratch.accuracy(corrupted, evalSet_.labels);
            } else {
                r.accuracy =
                    dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            }
            return r;
        });
    recordTrials("inject", results);
    return reduce(results, fail_prob);
}

AccuracyPoint
FaultInjectionRunner::runPerLayer(const std::vector<double> &fail_by_layer,
                                  double flip_prob)
{
    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "per_layer"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            const sram::VulnerabilityMap map(
                cfg_.seed, static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                2000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips = corruptNetworkPerLayer(scratch, net_, map,
                                                fail_by_layer, flip_prob,
                                                cfg_.layout, rng);
            r.accuracy = dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            return r;
        });
    recordTrials("per_layer", results);
    double max_f = 0.0;
    for (double f : fail_by_layer)
        max_f = std::max(max_f, f);
    return reduce(results, max_f);
}

AccuracyPoint
FaultInjectionRunner::runWithEcc(double fail_prob, double flip_prob,
                                 sram::EccStats *stats)
{
    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "ecc"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            const sram::VulnerabilityMap map(
                cfg_.seed, static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                3000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips =
                corruptNetworkEcc(scratch, net_, map, fail_prob,
                                  flip_prob, cfg_.layout, rng, &r.ecc);
            r.accuracy = dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            return r;
        });
    recordTrials("ecc", results);
    return reduce(results, fail_prob, stats);
}

ResilientAccuracyPoint
FaultInjectionRunner::runResilient(Volt vdd, const core::SimContext &ctx,
                                   const resilience::ResiliencePolicy &policy)
{
    // Dante's weight memory: the layout's weight region split into
    // 64 Kbit banks (16 for the 128 KB default).
    const int banks = static_cast<int>(cfg_.layout.weightRegionBits /
                                       sram::SramBank::kBits);
    if (banks < 1)
        fatal("runResilient: weight region smaller than one bank");
    const sram::FailureRateModel failure(ctx.failure);

    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "resilient"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            // Each map is one device instance: fresh memory, monitors,
            // standing levels and spare table. The per-access flip
            // randomness comes from a counter-derived stream (4000+m;
            // 1000/2000/3000 belong to the other experiment kinds).
            const sram::VulnerabilityMap map(
                cfg_.seed, static_cast<std::uint64_t>(m));
            sram::BankedMemory mem("weight_mem", banks, ctx.design,
                                   ctx.tech, failure);
            resilience::ResilientMemory rmem(mem, ctx, policy);
            rmem.reseed(Rng(cfg_.seed).split(
                4000 + static_cast<std::uint64_t>(m)));

            MapResult r;
            r.bitFlips =
                corruptNetworkResilient(scratch, net_, rmem, vdd, map);
            r.accuracy = dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            r.res = rmem.snapshot();
            r.resEnergy = rmem.totalAccessEnergy();
            // Each worker exports into its map's private registry
            // (reads obsLabels_ only); the serial reduction below
            // merges them in map order per the §7 discipline.
            if (obs_)
                rmem.exportMetrics(r.metrics, withBase({}));
            return r;
        });

    recordTrials("resilient", results);
    if (obs_) {
        for (const MapResult &r : results)
            obs_->metrics.merge(r.metrics);
    }

    ResilientAccuracyPoint out;
    out.point = reduce(results, failure.rate(vdd));
    out.point.voltage = vdd;
    double energy_sum = 0.0;
    double latency_sum = 0.0;
    for (const auto &r : results) {
        out.stats.merge(r.res);
        energy_sum += r.resEnergy.value();         // vblint: assoc-ok(map-index-order reduction, §7)
        latency_sum += r.res.retryLatency.value(); // vblint: assoc-ok(map-index-order reduction, §7)
    }
    const auto n = static_cast<double>(results.size());
    out.meanAccessEnergy = Joule(energy_sum / n);
    out.meanRetryLatency = Second(latency_sum / n);
    return out;
}

AccuracyPoint
FaultInjectionRunner::runAtVoltage(Volt v,
                                   const sram::FailureRateModel &model,
                                   const InjectionSpec &spec)
{
    AccuracyPoint p = run(model.rate(v), spec);
    p.voltage = v;
    return p;
}

std::vector<AccuracyPoint>
FaultInjectionRunner::sweepVoltage(const std::vector<Volt> &voltages,
                                   const sram::FailureRateModel &model,
                                   const InjectionSpec &spec)
{
    const std::size_t maps = static_cast<std::size_t>(cfg_.numMaps);
    std::vector<double> rates(voltages.size());
    for (std::size_t v = 0; v < voltages.size(); ++v)
        rates[v] = model.rate(voltages[v]);

    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "sweep"}}));
    }
    // One flat job grid over (voltage, map): sweeps with few maps per
    // point still fill every worker.
    const auto results = runMaps(
        voltages.size() * maps,
        [&](std::size_t j, dnn::Network &scratch) {
            const std::size_t m = j % maps;
            const double fail_prob = rates[j / maps];
            const sram::VulnerabilityMap map(
                cfg_.seed, static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                1000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips = corruptNetwork(scratch, net_, map, fail_prob,
                                        spec, cfg_.layout, rng);
            if (spec.injectInputs) {
                dnn::Tensor corrupted = corruptInputs(
                    evalSet_.images, map, fail_prob, spec.flipProb,
                    cfg_.layout, rng);
                r.accuracy =
                    scratch.accuracy(corrupted, evalSet_.labels);
            } else {
                r.accuracy =
                    dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            }
            return r;
        });

    recordTrials("sweep", results);
    std::vector<AccuracyPoint> out;
    out.reserve(voltages.size());
    for (std::size_t v = 0; v < voltages.size(); ++v) {
        const std::vector<MapResult> slice(
            results.begin() + static_cast<long>(v * maps),
            results.begin() + static_cast<long>((v + 1) * maps));
        AccuracyPoint p = reduce(slice, rates[v]);
        p.voltage = voltages[v];
        out.push_back(p);
    }
    return out;
}

} // namespace vboost::fi
