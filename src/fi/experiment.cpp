#include "fi/experiment.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"

namespace vboost::fi {

FaultInjectionRunner::FaultInjectionRunner(dnn::Network &net,
                                           dnn::Network &scratch,
                                           const dnn::Dataset &test_set,
                                           ExperimentConfig cfg)
    : net_(net), scratch_(scratch), cfg_(cfg)
{
    if (cfg_.numMaps < 1)
        fatal("FaultInjectionRunner: at least one fault map required");
    if (test_set.size() == 0)
        fatal("FaultInjectionRunner: empty test set");
    std::size_t n = test_set.size();
    if (cfg_.maxTestSamples > 0 && cfg_.maxTestSamples < n)
        n = cfg_.maxTestSamples;
    evalSet_ = test_set.slice(0, n);
}

double
FaultInjectionRunner::baselineAccuracy()
{
    // Quantization round trip with no faults: the accelerator's
    // error-free ceiling (what "maximum accuracy" means in Fig. 2).
    sram::VulnerabilityMap map(cfg_.seed, 0);
    Rng rng(cfg_.seed);
    InjectionSpec spec;
    spec.injectWeights = true;
    corruptNetwork(scratch_, net_, map, /*fail_prob=*/0.0, spec,
                   cfg_.layout, rng);
    return dnn::SgdTrainer::evaluate(scratch_, evalSet_, 0);
}

AccuracyPoint
FaultInjectionRunner::run(double fail_prob, const InjectionSpec &spec)
{
    RunningStats acc;
    RunningStats flips;
    for (int m = 0; m < cfg_.numMaps; ++m) {
        const sram::VulnerabilityMap map(cfg_.seed,
                                         static_cast<std::uint64_t>(m));
        Rng rng = Rng(cfg_.seed).split(1000 +
                                       static_cast<std::uint64_t>(m));
        std::uint64_t flipped = corruptNetwork(
            scratch_, net_, map, fail_prob, spec, cfg_.layout, rng);

        double a;
        if (spec.injectInputs) {
            dnn::Tensor corrupted = corruptInputs(
                evalSet_.images, map, fail_prob, spec.flipProb,
                cfg_.layout, rng);
            a = scratch_.accuracy(corrupted, evalSet_.labels);
        } else {
            a = dnn::SgdTrainer::evaluate(scratch_, evalSet_, 0);
        }
        acc.add(a);
        flips.add(static_cast<double>(flipped));
    }

    AccuracyPoint p;
    p.failProb = fail_prob;
    p.meanAccuracy = acc.mean();
    p.stddevAccuracy = acc.stddev();
    p.minAccuracy = acc.min();
    p.maxAccuracy = acc.max();
    p.meanBitFlips = flips.mean();
    return p;
}

AccuracyPoint
FaultInjectionRunner::runPerLayer(const std::vector<double> &fail_by_layer,
                                  double flip_prob)
{
    RunningStats acc;
    RunningStats flips;
    for (int m = 0; m < cfg_.numMaps; ++m) {
        const sram::VulnerabilityMap map(cfg_.seed,
                                         static_cast<std::uint64_t>(m));
        Rng rng = Rng(cfg_.seed).split(2000 +
                                       static_cast<std::uint64_t>(m));
        const auto flipped = corruptNetworkPerLayer(
            scratch_, net_, map, fail_by_layer, flip_prob, cfg_.layout,
            rng);
        acc.add(dnn::SgdTrainer::evaluate(scratch_, evalSet_, 0));
        flips.add(static_cast<double>(flipped));
    }
    AccuracyPoint p;
    double max_f = 0.0;
    for (double f : fail_by_layer)
        max_f = std::max(max_f, f);
    p.failProb = max_f;
    p.meanAccuracy = acc.mean();
    p.stddevAccuracy = acc.stddev();
    p.minAccuracy = acc.min();
    p.maxAccuracy = acc.max();
    p.meanBitFlips = flips.mean();
    return p;
}

AccuracyPoint
FaultInjectionRunner::runWithEcc(double fail_prob, double flip_prob,
                                 sram::EccStats *stats)
{
    RunningStats acc;
    RunningStats flips;
    for (int m = 0; m < cfg_.numMaps; ++m) {
        const sram::VulnerabilityMap map(cfg_.seed,
                                         static_cast<std::uint64_t>(m));
        Rng rng = Rng(cfg_.seed).split(3000 +
                                       static_cast<std::uint64_t>(m));
        const auto flipped =
            corruptNetworkEcc(scratch_, net_, map, fail_prob, flip_prob,
                              cfg_.layout, rng, stats);
        acc.add(dnn::SgdTrainer::evaluate(scratch_, evalSet_, 0));
        flips.add(static_cast<double>(flipped));
    }
    AccuracyPoint p;
    p.failProb = fail_prob;
    p.meanAccuracy = acc.mean();
    p.stddevAccuracy = acc.stddev();
    p.minAccuracy = acc.min();
    p.maxAccuracy = acc.max();
    p.meanBitFlips = flips.mean();
    return p;
}

AccuracyPoint
FaultInjectionRunner::runAtVoltage(Volt v,
                                   const sram::FailureRateModel &model,
                                   const InjectionSpec &spec)
{
    AccuracyPoint p = run(model.rate(v), spec);
    p.voltage = v;
    return p;
}

std::vector<AccuracyPoint>
FaultInjectionRunner::sweepVoltage(const std::vector<Volt> &voltages,
                                   const sram::FailureRateModel &model,
                                   const InjectionSpec &spec)
{
    std::vector<AccuracyPoint> out;
    out.reserve(voltages.size());
    for (Volt v : voltages)
        out.push_back(runAtVoltage(v, model, spec));
    return out;
}

} // namespace vboost::fi
