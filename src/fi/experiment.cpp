#include "fi/experiment.hpp"

#include <algorithm>
#include <optional>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "obs/scope.hpp"
#include "sram/cell_hash.hpp"

namespace vboost::fi {

namespace {

/**
 * Forward the evaluation set through `net` with every layer-output
 * element executed as one op on the timing-speculative datapath.
 * An op whose replay budget exhausts commits a corrupted result: one
 * deterministic bit flip (cellHash(corrupt_key, op) % 16) applied to
 * the element through its int16 storage format — the same fault
 * primitive the SRAM side uses. Serial in sample order so the
 * datapath's monitors and ladder evolve §7-deterministically.
 */
double
evaluateWithTimingFaults(dnn::Network &net, const dnn::Dataset &set,
                         timing::SpeculativeDatapath &dp,
                         std::uint64_t corrupt_key)
{
    // Matches SgdTrainer::evaluate's batching so fault-free timing
    // runs reproduce its accuracy exactly.
    constexpr std::size_t kBatch = 8;

    // Layers with parameters are the MAC datapath; stateless layers
    // (activations, reshapes) issue no ops.
    std::vector<char> isCompute(net.size(), 0);
    for (std::size_t l = 0; l < net.size(); ++l)
        isCompute[l] = !net.layer(l).params().empty();

    std::uint64_t op = 0;
    std::size_t correct = 0;
    std::vector<std::uint64_t> corrupted;
    for (std::size_t b = 0; b < set.size(); b += kBatch) {
        const std::size_t n = std::min(kBatch, set.size() - b);
        const dnn::Dataset batch = set.slice(b, n);
        dnn::Tensor x = batch.images;
        for (std::size_t l = 0; l < net.size(); ++l) {
            x = net.layer(l).forward(x, /*train=*/false);
            if (!isCompute[l])
                continue;
            const std::uint64_t base = op;
            corrupted.clear();
            dp.executeOps(base, x.numel(), corrupted);
            op += x.numel();
            if (corrupted.empty())
                continue;
            const FixedPointCodec codec = dnn::chooseCodec(x);
            for (std::uint64_t off : corrupted) {
                float &v = x[static_cast<std::size_t>(off)];
                const int bit = static_cast<int>(
                    sram::detail::cellHash(corrupt_key, base + off) %
                    16);
                v = codec.decode(
                    FixedPointCodec::flipBit(codec.encode(v), bit));
            }
        }
        // x is the [n, classes] logits tensor; argmax vs labels.
        const int classes = x.dim(1);
        for (std::size_t i = 0; i < n; ++i) {
            int best = 0;
            for (int c = 1; c < classes; ++c) {
                if (x.at(static_cast<int>(i), c) >
                    x.at(static_cast<int>(i), best))
                    best = c;
            }
            correct += best == batch.labels[i] ? 1u : 0u;
        }
    }
    return static_cast<double>(correct) /
           static_cast<double>(set.size());
}

/** Stream key of map m's datapath violation hashes (base 5000 for
 *  runTiming, 7000 for runCombined; 1000-4000 belong to the SRAM
 *  experiment kinds). */
std::uint64_t
datapathKey(std::uint64_t seed, std::uint64_t base, std::uint64_t m)
{
    return sram::detail::mix64(seed ^ sram::detail::mix64(base + m));
}

/** Key of the corrupted-commit bit-position stream, salted off the
 *  datapath key so the two streams never collide. */
std::uint64_t
corruptKey(std::uint64_t dp_key)
{
    return sram::detail::mix64(dp_key ^ 0x2545f4914f6cdd1dull);
}

} // namespace

FaultInjectionRunner::FaultInjectionRunner(dnn::Network &net,
                                           const dnn::Dataset &test_set,
                                           ExperimentConfig cfg)
    : net_(net), cfg_(cfg)
{
    if (cfg_.numMaps < 1)
        fatal("FaultInjectionRunner: at least one fault map required");
    if (cfg_.numThreads < 0)
        fatal("FaultInjectionRunner: negative thread count ",
              cfg_.numThreads);
    if (test_set.size() == 0)
        fatal("FaultInjectionRunner: empty test set");
    std::size_t n = test_set.size();
    if (cfg_.maxTestSamples > 0 && cfg_.maxTestSamples < n)
        n = cfg_.maxTestSamples;
    evalSet_ = test_set.slice(0, n);
}

void
FaultInjectionRunner::attachObservability(obs::Observability *o,
                                          std::uint64_t trace_pid,
                                          obs::Labels labels)
{
    obs_ = o;
    obsPid_ = trace_pid;
    obsLabels_ = std::move(labels);
}

obs::Labels
FaultInjectionRunner::withBase(obs::Labels extra) const
{
    // insert() keeps existing keys, so the explicit labels win over
    // the attached base labels.
    extra.insert(obsLabels_.begin(), obsLabels_.end());
    return extra;
}

void
FaultInjectionRunner::recordTrials(const std::string &kind,
                                   const std::vector<MapResult> &results)
{
    if (!obs_)
        return;
    obs::MetricsRegistry &reg = obs_->metrics;
    const obs::Labels kind_labels = withBase({{"kind", kind}});
    obs::Counter trials = reg.counter("fi.trials", kind_labels);
    obs::Counter flips = reg.counter("fi.bit_flips", kind_labels);
    obs::Histogram accuracy = reg.histogram(
        "fi.trial.accuracy", obs::linearBounds(0.0, 1.0, 21), kind_labels);
    for (const MapResult &r : results) {
        trials.add(1);
        flips.add(r.bitFlips);
        accuracy.observe(r.accuracy);
        // One virtual tick per trial: spans line up in map order on
        // the trial clock regardless of worker scheduling.
        const std::uint64_t ts = trialClock_.now();
        trialClock_.advance(1);
        obs_->trace.complete(
            obsPid_, 0, "fi." + kind, ts, 1,
            {{"accuracy", r.accuracy},
             {"bit_flips", static_cast<double>(r.bitFlips)}});
    }
}

sram::VulnerabilityMap
FaultInjectionRunner::makeMap(std::uint64_t m) const
{
    // Both models share the same counter-based stream key, so the
    // i.i.d. fail-prob draws are identical between them and the
    // clustered model differs only in its per-cell stratum.
    if (cfg_.mapModel == sram::MapModel::Iid)
        return sram::VulnerabilityMap(cfg_.seed, m);
    return sram::VulnerabilityMap(cfg_.seed, m, cfg_.mapModel,
                                  cfg_.cluster);
}

void
FaultInjectionRunner::ensureScratch(unsigned count)
{
    while (scratch_.size() < count)
        scratch_.push_back(
            std::make_unique<dnn::Network>(net_.clone()));
}

std::vector<FaultInjectionRunner::MapResult>
FaultInjectionRunner::runMaps(
    std::size_t jobs,
    const std::function<MapResult(std::size_t, dnn::Network &)> &evaluate)
{
    const unsigned threads =
        ThreadPool::resolveThreads(cfg_.numThreads);
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs, threads));
    ensureScratch(std::max(1u, workers));

    std::vector<MapResult> results(jobs);
    // Job j deposits into results[j]; the dynamic schedule never
    // affects the output because reduction happens in job order.
    parallelFor(jobs, static_cast<int>(workers),
                // vblint: allow(VB009, job j writes only results[j]; scratch is slot-exclusive)
                [&](std::size_t j, unsigned slot) {
                    results[j] = evaluate(j, *scratch_[slot]);
                });
    return results;
}

AccuracyPoint
FaultInjectionRunner::reduce(const std::vector<MapResult> &results,
                             double fail_prob, sram::EccStats *stats)
{
    // Deterministic reduction: one singleton accumulator per map,
    // merged in map order (Chan et al.), so the outcome is a pure
    // function of the map results — not of the thread count.
    RunningStats acc;
    RunningStats flips;
    for (const auto &r : results) {
        RunningStats a, f;
        a.add(r.accuracy);
        f.add(static_cast<double>(r.bitFlips));
        acc.merge(a);
        flips.merge(f);
        if (stats)
            stats->merge(r.ecc);
    }

    AccuracyPoint p;
    p.failProb = fail_prob;
    p.meanAccuracy = acc.mean();
    p.stddevAccuracy = acc.stddev();
    p.minAccuracy = acc.min();
    p.maxAccuracy = acc.max();
    p.meanBitFlips = flips.mean();
    return p;
}

double
FaultInjectionRunner::baselineAccuracy()
{
    // Quantization round trip with no faults: the accelerator's
    // error-free ceiling (what "maximum accuracy" means in Fig. 2).
    ensureScratch(1);
    dnn::Network &scratch = *scratch_[0];
    const sram::VulnerabilityMap map = makeMap(0);
    Rng rng(cfg_.seed);
    InjectionSpec spec;
    spec.injectWeights = true;
    corruptNetwork(scratch, net_, map, /*fail_prob=*/0.0, spec,
                   cfg_.layout, rng);
    return dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
}

AccuracyPoint
FaultInjectionRunner::run(double fail_prob, const InjectionSpec &spec)
{
    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "inject"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            const sram::VulnerabilityMap map =
                makeMap(static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                1000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips = corruptNetwork(scratch, net_, map, fail_prob,
                                        spec, cfg_.layout, rng);
            if (spec.injectInputs) {
                dnn::Tensor corrupted = corruptInputs(
                    evalSet_.images, map, fail_prob, spec.flipProb,
                    cfg_.layout, rng);
                r.accuracy =
                    scratch.accuracy(corrupted, evalSet_.labels);
            } else {
                r.accuracy =
                    dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            }
            return r;
        });
    recordTrials("inject", results);
    return reduce(results, fail_prob);
}

AccuracyPoint
FaultInjectionRunner::runPerLayer(const std::vector<double> &fail_by_layer,
                                  double flip_prob)
{
    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "per_layer"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            const sram::VulnerabilityMap map =
                makeMap(static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                2000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips = corruptNetworkPerLayer(scratch, net_, map,
                                                fail_by_layer, flip_prob,
                                                cfg_.layout, rng);
            r.accuracy = dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            return r;
        });
    recordTrials("per_layer", results);
    double max_f = 0.0;
    for (double f : fail_by_layer)
        max_f = std::max(max_f, f);
    return reduce(results, max_f);
}

AccuracyPoint
FaultInjectionRunner::runWithEcc(double fail_prob, double flip_prob,
                                 sram::EccStats *stats)
{
    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "ecc"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            const sram::VulnerabilityMap map =
                makeMap(static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                3000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips =
                corruptNetworkEcc(scratch, net_, map, fail_prob,
                                  flip_prob, cfg_.layout, rng, &r.ecc);
            r.accuracy = dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            return r;
        });
    recordTrials("ecc", results);
    return reduce(results, fail_prob, stats);
}

ResilientAccuracyPoint
FaultInjectionRunner::runResilient(Volt vdd, const core::SimContext &ctx,
                                   const resilience::ResiliencePolicy &policy)
{
    // Dante's weight memory: the layout's weight region split into
    // 64 Kbit banks (16 for the 128 KB default).
    const int banks = static_cast<int>(cfg_.layout.weightRegionBits /
                                       sram::SramBank::kBits);
    if (banks < 1)
        fatal("runResilient: weight region smaller than one bank");
    const sram::FailureRateModel failure(ctx.failure);

    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "resilient"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            // Each map is one device instance: fresh memory, monitors,
            // standing levels and spare table. The per-access flip
            // randomness comes from a counter-derived stream (4000+m;
            // 1000/2000/3000 belong to the other experiment kinds).
            const sram::VulnerabilityMap map =
                makeMap(static_cast<std::uint64_t>(m));
            sram::BankedMemory mem("weight_mem", banks, ctx.design,
                                   ctx.tech, failure);
            resilience::ResilientMemory rmem(mem, ctx, policy);
            rmem.reseed(Rng(cfg_.seed).split(
                4000 + static_cast<std::uint64_t>(m)));

            MapResult r;
            r.bitFlips =
                corruptNetworkResilient(scratch, net_, rmem, vdd, map);
            r.accuracy = dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            r.res = rmem.snapshot();
            r.resEnergy = rmem.totalAccessEnergy();
            // Each worker exports into its map's private registry
            // (reads obsLabels_ only); the serial reduction below
            // merges them in map order per the §7 discipline.
            if (obs_)
                rmem.exportMetrics(r.metrics, withBase({}));
            return r;
        });

    recordTrials("resilient", results);
    if (obs_) {
        for (const MapResult &r : results)
            obs_->metrics.merge(r.metrics);
    }

    ResilientAccuracyPoint out;
    out.point = reduce(results, failure.rate(vdd));
    out.point.voltage = vdd;
    double energy_sum = 0.0;
    double latency_sum = 0.0;
    for (const auto &r : results) {
        out.stats.merge(r.res);
        energy_sum += r.resEnergy.value();         // vblint: assoc-ok(map-index-order reduction, §7)
        latency_sum += r.res.retryLatency.value(); // vblint: assoc-ok(map-index-order reduction, §7)
    }
    const auto n = static_cast<double>(results.size());
    out.meanAccessEnergy = Joule(energy_sum / n);
    out.meanRetryLatency = Second(latency_sum / n);
    return out;
}

TimingAccuracyPoint
FaultInjectionRunner::runTiming(const core::SimContext &ctx,
                                const TimingInjection &inj)
{
    inj.params.validate();
    inj.policy.validate();
    // Prototype datapath for the derived operating-point quantities
    // (safe rail, initial-rail error probability, cycle stretch);
    // never executes ops.
    const timing::SpeculativeDatapath proto(
        ctx.tech, inj.params, inj.policy, inj.vLogic, inj.clock);

    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "timing"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            // Weights stage fault-free through the int16 round trip:
            // the SRAM is clean, only the datapath misbehaves.
            const sram::VulnerabilityMap map =
                makeMap(static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                5000 + static_cast<std::uint64_t>(m));
            InjectionSpec spec;
            spec.injectWeights = true;
            corruptNetwork(scratch, net_, map, /*fail_prob=*/0.0, spec,
                           cfg_.layout, rng);

            // Each map is one device instance: fresh monitors, ladder
            // position and violation-hash stream.
            timing::SpeculativeDatapath dp(ctx.tech, inj.params,
                                           inj.policy, inj.vLogic,
                                           inj.clock);
            const std::uint64_t key = datapathKey(
                cfg_.seed, 5000, static_cast<std::uint64_t>(m));
            dp.reseed(key);

            MapResult r;
            r.accuracy = evaluateWithTimingFaults(scratch, evalSet_, dp,
                                                  corruptKey(key));
            r.tim = dp.stats();
            // "Bit flips" on the timing side = corrupted commits that
            // reached inference (one flipped bit each).
            r.bitFlips = r.tim.corrupted;
            if (obs_)
                dp.exportMetrics(r.metrics, withBase({}));
            return r;
        });

    recordTrials("timing", results);
    if (obs_) {
        for (const MapResult &r : results)
            obs_->metrics.merge(r.metrics);
    }

    TimingAccuracyPoint out;
    out.point = reduce(results, proto.currentOpErrorProb());
    out.point.voltage = inj.vLogic;
    const double period = proto.effectivePeriod().value();
    double energy_sum = 0.0;
    double latency_sum = 0.0;
    for (const auto &r : results) {
        out.stats.merge(r.tim);
        energy_sum += r.tim.logicEnergy.value(); // vblint: assoc-ok(map-index-order reduction, §7)
        latency_sum +=                           // vblint: assoc-ok(map-index-order reduction, §7)
            static_cast<double>(r.tim.replayCycles +
                                r.tim.bubbleCycles) *
            period;
    }
    const auto n = static_cast<double>(results.size());
    out.meanLogicEnergy = Joule(energy_sum / n);
    out.meanReplayLatency = Second(latency_sum / n);
    out.cycleStretch = proto.cycleStretch();
    out.safeVoltage = proto.safeVoltage();
    return out;
}

CombinedAccuracyPoint
FaultInjectionRunner::runCombined(Volt v_sram,
                                  const core::SimContext &ctx,
                                  const resilience::ResiliencePolicy &policy,
                                  const TimingInjection &inj)
{
    inj.params.validate();
    inj.policy.validate();
    const int banks = static_cast<int>(cfg_.layout.weightRegionBits /
                                       sram::SramBank::kBits);
    if (banks < 1)
        fatal("runCombined: weight region smaller than one bank");
    const sram::FailureRateModel failure(ctx.failure);
    const timing::SpeculativeDatapath proto(
        ctx.tech, inj.params, inj.policy, inj.vLogic, inj.clock);

    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "combined"}}));
    }
    const auto results = runMaps(
        static_cast<std::size_t>(cfg_.numMaps),
        [&](std::size_t m, dnn::Network &scratch) {
            // SRAM side exactly as runResilient, but on its own
            // counter streams (6000+m) so combined runs never reuse
            // the resilient-only experiment's randomness.
            const sram::VulnerabilityMap map =
                makeMap(static_cast<std::uint64_t>(m));
            sram::BankedMemory mem("weight_mem", banks, ctx.design,
                                   ctx.tech, failure);
            resilience::ResilientMemory rmem(mem, ctx, policy);
            rmem.reseed(Rng(cfg_.seed).split(
                6000 + static_cast<std::uint64_t>(m)));

            MapResult r;
            r.bitFlips =
                corruptNetworkResilient(scratch, net_, rmem, v_sram, map);

            timing::SpeculativeDatapath dp(ctx.tech, inj.params,
                                           inj.policy, inj.vLogic,
                                           inj.clock);
            const std::uint64_t key = datapathKey(
                cfg_.seed, 7000, static_cast<std::uint64_t>(m));
            dp.reseed(key);
            r.accuracy = evaluateWithTimingFaults(scratch, evalSet_, dp,
                                                  corruptKey(key));
            r.tim = dp.stats();
            r.bitFlips += r.tim.corrupted;
            r.res = rmem.snapshot();
            r.resEnergy = rmem.totalAccessEnergy();
            if (obs_) {
                rmem.exportMetrics(r.metrics, withBase({}));
                dp.exportMetrics(r.metrics, withBase({}));
            }
            return r;
        });

    recordTrials("combined", results);
    if (obs_) {
        for (const MapResult &r : results)
            obs_->metrics.merge(r.metrics);
    }

    CombinedAccuracyPoint out;
    out.point = reduce(results, failure.rate(v_sram));
    out.point.voltage = v_sram;
    const double period = proto.effectivePeriod().value();
    double sram_energy = 0.0;
    double logic_energy = 0.0;
    double retry_latency = 0.0;
    double replay_latency = 0.0;
    for (const auto &r : results) {
        out.sram.merge(r.res);
        out.timing.merge(r.tim);
        sram_energy += r.resEnergy.value();          // vblint: assoc-ok(map-index-order reduction, §7)
        logic_energy += r.tim.logicEnergy.value();   // vblint: assoc-ok(map-index-order reduction, §7)
        retry_latency += r.res.retryLatency.value(); // vblint: assoc-ok(map-index-order reduction, §7)
        replay_latency +=                            // vblint: assoc-ok(map-index-order reduction, §7)
            static_cast<double>(r.tim.replayCycles +
                                r.tim.bubbleCycles) *
            period;
    }
    const auto n = static_cast<double>(results.size());
    out.meanSramEnergy = Joule(sram_energy / n);
    out.meanLogicEnergy = Joule(logic_energy / n);
    out.meanRetryLatency = Second(retry_latency / n);
    out.meanReplayLatency = Second(replay_latency / n);
    out.cycleStretch = proto.cycleStretch();
    out.safeVoltage = proto.safeVoltage();
    return out;
}

AccuracyPoint
FaultInjectionRunner::runAtVoltage(Volt v,
                                   const sram::FailureRateModel &model,
                                   const InjectionSpec &spec)
{
    AccuracyPoint p = run(model.rate(v), spec);
    p.voltage = v;
    return p;
}

std::vector<AccuracyPoint>
FaultInjectionRunner::sweepVoltage(const std::vector<Volt> &voltages,
                                   const sram::FailureRateModel &model,
                                   const InjectionSpec &spec)
{
    const std::size_t maps = static_cast<std::size_t>(cfg_.numMaps);
    std::vector<double> rates(voltages.size());
    for (std::size_t v = 0; v < voltages.size(); ++v)
        rates[v] = model.rate(voltages[v]);

    std::optional<obs::ScopeTimer> timer;
    if (obs_) {
        timer.emplace(obs_->metrics, "fi.run", trialClock_,
                      withBase({{"kind", "sweep"}}));
    }
    // One flat job grid over (voltage, map): sweeps with few maps per
    // point still fill every worker.
    const auto results = runMaps(
        voltages.size() * maps,
        [&](std::size_t j, dnn::Network &scratch) {
            const std::size_t m = j % maps;
            const double fail_prob = rates[j / maps];
            const sram::VulnerabilityMap map =
                makeMap(static_cast<std::uint64_t>(m));
            Rng rng = Rng(cfg_.seed).split(
                1000 + static_cast<std::uint64_t>(m));
            MapResult r;
            r.bitFlips = corruptNetwork(scratch, net_, map, fail_prob,
                                        spec, cfg_.layout, rng);
            if (spec.injectInputs) {
                dnn::Tensor corrupted = corruptInputs(
                    evalSet_.images, map, fail_prob, spec.flipProb,
                    cfg_.layout, rng);
                r.accuracy =
                    scratch.accuracy(corrupted, evalSet_.labels);
            } else {
                r.accuracy =
                    dnn::SgdTrainer::evaluate(scratch, evalSet_, 0);
            }
            return r;
        });

    recordTrials("sweep", results);
    std::vector<AccuracyPoint> out;
    out.reserve(voltages.size());
    for (std::size_t v = 0; v < voltages.size(); ++v) {
        const std::vector<MapResult> slice(
            results.begin() + static_cast<long>(v * maps),
            results.begin() + static_cast<long>((v + 1) * maps));
        AccuracyPoint p = reduce(slice, rates[v]);
        p.voltage = voltages[v];
        out.push_back(p);
    }
    return out;
}

} // namespace vboost::fi
