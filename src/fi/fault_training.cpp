#include "fi/fault_training.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"

namespace vboost::fi {

FaultAwareTrainer::FaultAwareTrainer(FaultTrainConfig cfg) : cfg_(cfg)
{
    if (cfg_.failProb < 0.0 || cfg_.failProb > 1.0)
        fatal("FaultAwareTrainer: failProb must be in [0,1] (got ",
              cfg_.failProb, ")");
    if (cfg_.flipProb < 0.0 || cfg_.flipProb > 1.0)
        fatal("FaultAwareTrainer: flipProb must be in [0,1] (got ",
              cfg_.flipProb, ")");
    if (cfg_.warmupEpochs < 0)
        fatal("FaultAwareTrainer: warmupEpochs must be >= 0 (got ",
              cfg_.warmupEpochs, ")");
    // Delegate the rest of the validation to the base trainer.
    dnn::SgdTrainer validator(cfg_.base);
    (void)validator;
}

std::vector<dnn::EpochStats>
FaultAwareTrainer::train(dnn::Network &net, dnn::Network &scratch,
                         const dnn::Dataset &train_set, Rng &rng)
{
    if (train_set.size() == 0)
        fatal("FaultAwareTrainer::train: empty training set");

    auto clean_params = net.params();
    auto noisy_params = scratch.params();
    if (clean_params.size() != noisy_params.size())
        fatal("FaultAwareTrainer: net and scratch structure mismatch");

    std::vector<dnn::Tensor> velocity;
    velocity.reserve(clean_params.size());
    for (auto &p : clean_params)
        velocity.push_back(dnn::Tensor::zeros(p.value->shape()));

    dnn::SoftmaxCrossEntropy loss_fn;
    std::vector<std::size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    const auto &base = cfg_.base;
    std::vector<dnn::EpochStats> stats;
    double lr = base.learningRate;
    std::uint64_t batch_counter = 0;
    for (int epoch = 0; epoch < base.epochs; ++epoch) {
        for (std::size_t i = order.size(); i > 1; --i) {
            const std::size_t j = rng.uniformInt(i);
            std::swap(order[i - 1], order[j]);
        }

        double loss_sum = 0.0;
        std::size_t correct = 0, seen = 0, batches = 0;
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(base.batchSize)) {
            const std::size_t count =
                std::min(static_cast<std::size_t>(base.batchSize),
                         order.size() - start);
            std::vector<std::size_t> idx(
                order.begin() + static_cast<long>(start),
                order.begin() + static_cast<long>(start + count));
            dnn::Dataset batch = train_set.gather(idx);

            // Fresh fault map per batch: robustness to the rate, not
            // to one specific set of broken cells.
            const sram::VulnerabilityMap map(cfg_.seed, batch_counter);
            Rng flip_rng = Rng(cfg_.seed).split(batch_counter);
            ++batch_counter;
            const double fail_prob =
                epoch < cfg_.warmupEpochs ? 0.0 : cfg_.failProb;
            corruptNetwork(scratch, net, map, fail_prob,
                           InjectionSpec::allWeights(), cfg_.layout,
                           flip_rng);

            scratch.zeroGrads();
            dnn::Tensor logits =
                scratch.forward(batch.images, /*train=*/true);
            dnn::Tensor grad;
            loss_sum += loss_fn.lossAndGrad(logits, batch.labels, grad);
            ++batches;
            scratch.backward(grad);

            for (int r = 0; r < logits.dim(0); ++r) {
                int best = 0;
                for (int c = 1; c < logits.dim(1); ++c) {
                    if (logits.at(r, c) > logits.at(r, best))
                        best = c;
                }
                correct += best ==
                           batch.labels[static_cast<std::size_t>(r)];
                ++seen;
            }

            // Straight-through: gradients from the corrupted forward
            // pass update the clean parameters, with element clamping
            // against fault-induced gradient outliers and projection
            // back into the deployment Q-format range.
            const auto gclip = static_cast<float>(cfg_.gradClip);
            const auto wclip = static_cast<float>(cfg_.weightClip);
            for (std::size_t p = 0; p < clean_params.size(); ++p) {
                dnn::Tensor &v = velocity[p];
                dnn::Tensor &value = *clean_params[p].value;
                const dnn::Tensor &g = *noisy_params[p].grad;
                for (std::size_t e = 0; e < value.numel(); ++e) {
                    float ge = g[e];
                    if (gclip > 0.0f)
                        ge = std::clamp(ge, -gclip, gclip);
                    v[e] = static_cast<float>(base.momentum * v[e] -
                                              lr * ge);
                    value[e] += v[e];
                    if (wclip > 0.0f)
                        value[e] = std::clamp(value[e], -wclip, wclip);
                }
            }
        }

        dnn::EpochStats es;
        es.meanLoss = loss_sum / static_cast<double>(batches);
        es.trainAccuracy =
            static_cast<double>(correct) / static_cast<double>(seen);
        stats.push_back(es);
        if (base.verbose) {
            inform("fault-aware epoch ", epoch + 1, "/", base.epochs,
                   ": loss=", es.meanLoss,
                   " train_acc=", es.trainAccuracy);
        }
        lr *= base.lrDecay;
    }
    return stats;
}

} // namespace vboost::fi
