#include "fi/accuracy_curve.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vboost::fi {

AccuracyCurve
AccuracyCurve::sample(FaultInjectionRunner &runner,
                      const InjectionSpec &spec, double f_min, double f_max,
                      int points)
{
    if (points < 2)
        fatal("AccuracyCurve::sample: at least two points required");
    if (f_min <= 0.0 || f_max <= f_min)
        fatal("AccuracyCurve::sample: need 0 < f_min < f_max");

    std::vector<double> fs, accs;
    const double log_min = std::log(f_min), log_max = std::log(f_max);
    for (int i = 0; i < points; ++i) {
        const double f = std::exp(log_min + (log_max - log_min) * i /
                                                (points - 1));
        fs.push_back(f);
        accs.push_back(runner.run(f, spec).meanAccuracy);
    }
    return AccuracyCurve(std::move(fs), std::move(accs),
                         runner.baselineAccuracy());
}

AccuracyCurve::AccuracyCurve(std::vector<double> fail_probs,
                             std::vector<double> accuracies,
                             double fault_free_accuracy)
    : failProbs_(std::move(fail_probs)), accuracies_(std::move(accuracies)),
      faultFree_(fault_free_accuracy)
{
    if (failProbs_.size() != accuracies_.size() || failProbs_.size() < 2)
        fatal("AccuracyCurve: need >= 2 matching samples");
    for (std::size_t i = 0; i < failProbs_.size(); ++i) {
        if (failProbs_[i] <= 0.0)
            fatal("AccuracyCurve: failure probabilities must be positive");
        if (i > 0 && failProbs_[i] <= failProbs_[i - 1])
            fatal("AccuracyCurve: failure probabilities must increase");
    }
}

double
AccuracyCurve::at(double fail_prob) const
{
    if (fail_prob <= failProbs_.front())
        return fail_prob <= 0.0 ? faultFree_
                                : std::max(accuracies_.front(), faultFree_ -
                                           (faultFree_ -
                                            accuracies_.front()) *
                                               fail_prob /
                                               failProbs_.front());
    if (fail_prob >= failProbs_.back())
        return accuracies_.back();
    // Log-linear interpolation between bracketing samples.
    std::size_t hi = 1;
    while (failProbs_[hi] < fail_prob)
        ++hi;
    const std::size_t lo = hi - 1;
    const double t = (std::log(fail_prob) - std::log(failProbs_[lo])) /
                     (std::log(failProbs_[hi]) - std::log(failProbs_[lo]));
    return accuracies_[lo] + t * (accuracies_[hi] - accuracies_[lo]);
}

} // namespace vboost::fi
