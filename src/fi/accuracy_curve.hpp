/**
 * @file
 * An interpolated accuracy-vs-failure-probability curve. Monte-Carlo
 * accuracy evaluation is expensive (maps x images x MACs); the
 * iso-accuracy studies (Figs. 13c, 14, 15) query accuracy at many
 * boosted-voltage points, so we sample the curve once on a log-spaced
 * failure-probability grid and interpolate (linear in log F).
 */

#ifndef VBOOST_FI_ACCURACY_CURVE_HPP
#define VBOOST_FI_ACCURACY_CURVE_HPP

#include <vector>

#include "fi/experiment.hpp"

namespace vboost::fi {

/** Accuracy as a function of bit failure probability. */
class AccuracyCurve
{
  public:
    /**
     * Sample the curve with a runner.
     *
     * @param runner Monte-Carlo evaluation harness.
     * @param spec injection target.
     * @param f_min smallest non-zero failure probability sampled.
     * @param f_max largest failure probability sampled.
     * @param points log-spaced sample count (>= 2).
     */
    static AccuracyCurve sample(FaultInjectionRunner &runner,
                                const InjectionSpec &spec,
                                double f_min = 1e-5, double f_max = 0.3,
                                int points = 10);

    /** Construct directly from (failProb, accuracy) samples; fail
     *  probabilities must be positive and strictly increasing. */
    AccuracyCurve(std::vector<double> fail_probs,
                  std::vector<double> accuracies,
                  double fault_free_accuracy);

    /**
     * Interpolated accuracy at failure probability f: the fault-free
     * accuracy at f below the sampled range, the last sample above it,
     * log-linear interpolation in between.
     */
    double at(double fail_prob) const;

    /** Accuracy with no faults (the quantized ceiling). */
    double faultFree() const { return faultFree_; }

    /** The sampled grid (diagnostics). */
    const std::vector<double> &failProbs() const { return failProbs_; }
    const std::vector<double> &accuracies() const { return accuracies_; }

  private:
    std::vector<double> failProbs_;
    std::vector<double> accuracies_;
    double faultFree_;
};

} // namespace vboost::fi

#endif // VBOOST_FI_ACCURACY_CURVE_HPP
