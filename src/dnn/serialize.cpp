#include "dnn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hpp"

namespace vboost::dnn {

namespace {

constexpr std::uint32_t kMagic = 0x56424e31; // "VBN1"

void
writeParameters(Network &net, std::ostream &out, const std::string &what)
{
    auto params = net.params();
    const auto count = static_cast<std::uint32_t>(params.size());
    out.write(reinterpret_cast<const char *>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (auto &p : params) {
        const auto rank = static_cast<std::uint32_t>(p.value->rank());
        out.write(reinterpret_cast<const char *>(&rank), sizeof(rank));
        for (int d = 0; d < p.value->rank(); ++d) {
            const auto dim = static_cast<std::uint32_t>(p.value->dim(d));
            out.write(reinterpret_cast<const char *>(&dim), sizeof(dim));
        }
        out.write(reinterpret_cast<const char *>(p.value->data()),
                  static_cast<std::streamsize>(p.value->numel() *
                                               sizeof(float)));
    }
    if (!out)
        fatal("saveParameters: write to ", what, " failed");
}

void
readParameters(Network &net, std::istream &in, const std::string &what)
{
    std::uint32_t magic = 0, count = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in || magic != kMagic)
        fatal("loadParameters: ", what, " is not a parameter image");

    auto params = net.params();
    if (count != params.size())
        fatal("loadParameters: ", what, " has ", count,
              " parameters; network expects ", params.size());

    for (auto &p : params) {
        std::uint32_t rank = 0;
        in.read(reinterpret_cast<char *>(&rank), sizeof(rank));
        if (!in || rank != static_cast<std::uint32_t>(p.value->rank()))
            fatal("loadParameters: rank mismatch at ", p.name);
        for (int d = 0; d < p.value->rank(); ++d) {
            std::uint32_t dim = 0;
            in.read(reinterpret_cast<char *>(&dim), sizeof(dim));
            if (!in || dim != static_cast<std::uint32_t>(p.value->dim(d)))
                fatal("loadParameters: shape mismatch at ", p.name);
        }
        in.read(reinterpret_cast<char *>(p.value->data()),
                static_cast<std::streamsize>(p.value->numel() *
                                             sizeof(float)));
        if (!in)
            fatal("loadParameters: truncated data at ", p.name);
    }
}

} // namespace

void
saveParameters(Network &net, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("saveParameters: cannot open ", path, " for writing");
    writeParameters(net, out, path);
}

void
saveParameters(Network &net, std::ostream &out)
{
    writeParameters(net, out, "<stream>");
}

bool
loadParameters(Network &net, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    readParameters(net, in, path);
    return true;
}

void
loadParameters(Network &net, std::istream &in)
{
    readParameters(net, in, "<stream>");
}

} // namespace vboost::dnn
