/**
 * @file
 * Minibatch SGD trainer with momentum for the from-scratch DNN engine.
 * Training happens at full float precision; quantization to the
 * accelerator's int16 storage format is a separate post-training step
 * (see dnn/quantize.hpp), matching the paper's flow where networks are
 * trained offline and deployed to the accelerator's SRAM.
 */

#ifndef VBOOST_DNN_TRAINER_HPP
#define VBOOST_DNN_TRAINER_HPP

#include "dnn/dataset.hpp"
#include "dnn/network.hpp"

namespace vboost::dnn {

/** Trainer configuration. */
struct TrainConfig
{
    int epochs = 6;
    int batchSize = 64;
    double learningRate = 0.1;
    double momentum = 0.9;
    /** Learning-rate decay multiplier applied after each epoch. */
    double lrDecay = 0.85;
    /** Print per-epoch progress via inform(). */
    bool verbose = false;
};

/** Per-epoch training record. */
struct EpochStats
{
    double meanLoss = 0.0;
    double trainAccuracy = 0.0;
};

/** Minibatch SGD with classical momentum. */
class SgdTrainer
{
  public:
    explicit SgdTrainer(TrainConfig cfg = {});

    /**
     * Train the network in place.
     *
     * @param net network to train.
     * @param train_set training data.
     * @param rng shuffling randomness.
     * @return per-epoch loss/accuracy.
     */
    std::vector<EpochStats> train(Network &net, const Dataset &train_set,
                                  Rng &rng);

    /**
     * Top-1 accuracy of `net` on `test_set`, evaluated in batches.
     *
     * @param max_samples cap on evaluated samples (0 = all).
     */
    static double evaluate(Network &net, const Dataset &test_set,
                           std::size_t max_samples = 0);

    const TrainConfig &config() const { return cfg_; }

  private:
    TrainConfig cfg_;
};

} // namespace vboost::dnn

#endif // VBOOST_DNN_TRAINER_HPP
