/**
 * @file
 * Minimal dense tensor for the from-scratch DNN engine: row-major
 * float storage with a small-rank shape, plus the GEMM every layer is
 * built on. No external BLAS; the inner kernel is written so the
 * compiler vectorizes the contiguous j-loop.
 */

#ifndef VBOOST_DNN_TENSOR_HPP
#define VBOOST_DNN_TENSOR_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace vboost::dnn {

namespace detail {

/**
 * Allocator whose value-less construct() default-initializes, so
 * vector::resize leaves floats uninitialized. Lets fully-overwritten
 * layer outputs (Tensor::uninitialized) skip the zero-fill memset the
 * normal constructor performs.
 */
template <typename T>
struct NoInitAlloc : std::allocator<T>
{
    template <typename U> struct rebind
    {
        using other = NoInitAlloc<U>;
    };
    template <typename U>
    void
    construct(U *p) noexcept
    {
        ::new (static_cast<void *>(p)) U;
    }
    template <typename U, typename... Args>
    void
    construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }
};

} // namespace detail

/** Row-major dense float tensor of rank 1..4. */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no elements). */
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** Zero-filled tensor. */
    static Tensor zeros(std::vector<int> shape);

    /**
     * Tensor with UNINITIALIZED contents — for outputs every element
     * of which is overwritten before being read (layer forward
     * results). Reading an element before writing it is undefined.
     */
    static Tensor uninitialized(std::vector<int> shape);

    /** Gaussian-initialized tensor: N(0, stddev). */
    static Tensor randn(std::vector<int> shape, Rng &rng, double stddev);

    /** Shape accessor. */
    const std::vector<int> &shape() const { return shape_; }

    /** Rank (number of dimensions). */
    int rank() const { return static_cast<int>(shape_.size()); }

    /** Size of dimension d. */
    int dim(int d) const;

    /** Total element count. */
    std::size_t numel() const { return data_.size(); }

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 2-D access (rank-2 tensors). */
    float &at(int i, int j);
    float at(int i, int j) const;

    /** 4-D access (rank-4 tensors, NCHW). */
    float &at(int n, int c, int h, int w);
    float at(int n, int c, int h, int w) const;

    /**
     * Reshape to a new shape with the same element count. Returns a
     * copy of the metadata over the same values (data is copied; this
     * engine favors clarity over aliasing).
     */
    Tensor reshaped(std::vector<int> new_shape) const;

    /** Set every element to v. */
    void fill(float v);

    /** Largest absolute element (0 for empty tensors). */
    float maxAbs() const;

    /** Human-readable shape string like "[64, 784]". */
    std::string shapeString() const;

  private:
    std::vector<int> shape_;
    std::vector<float, detail::NoInitAlloc<float>> data_;
};

/**
 * GEMM: C = A * B (+ C if accumulate), with A [m x k], B [k x n],
 * C [m x n], all row-major raw pointers.
 */
void gemm(const float *a, const float *b, float *c, int m, int k, int n,
          bool accumulate = false);

/** C = A^T * B with A [k x m], B [k x n], C [m x n]. */
void gemmTransA(const float *a, const float *b, float *c, int m, int k,
                int n, bool accumulate = false);

/** C = A * B^T with A [m x k], B [n x k], C [m x n]. */
void gemmTransB(const float *a, const float *b, float *c, int m, int k,
                int n, bool accumulate = false);

} // namespace vboost::dnn

#endif // VBOOST_DNN_TENSOR_HPP
