/**
 * @file
 * A sequential network container plus the softmax cross-entropy loss:
 * everything the trainer and the fault-injection harness need to run
 * forward/backward passes and classify batches.
 */

#ifndef VBOOST_DNN_NETWORK_HPP
#define VBOOST_DNN_NETWORK_HPP

#include <memory>
#include <string>
#include <vector>

#include "dnn/layer.hpp"

namespace vboost::dnn {

/** A stack of layers applied in sequence. */
class Network
{
  public:
    Network() = default;
    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /** Append a layer constructed in place. Returns a reference. */
    template <typename L, typename... Args>
    L &
    addLayer(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        layers_.push_back(std::move(layer));
        return ref;
    }

    /** Forward pass through all layers. */
    Tensor forward(const Tensor &x, bool train = false);

    /** Backward pass; returns dL/d(input). */
    Tensor backward(const Tensor &grad_out);

    /** All parameter references, in layer order. */
    std::vector<ParamRef> params();

    /** References to weight parameters only (injection targets),
     *  in layer order: index k is "weight layer k". */
    std::vector<ParamRef> weightParams();

    /** Zero every parameter gradient. */
    void zeroGrads();

    /** Predicted class (argmax over logits) per batch row. */
    std::vector<int> predict(const Tensor &x);

    /** Fraction of rows whose argmax matches the label. */
    double accuracy(const Tensor &x, const std::vector<int> &labels);

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    /** Layer access. */
    Layer &layer(std::size_t i) { return *layers_[i]; }

    /** Deep-copy the parameter values from another structurally
     *  identical network. */
    void copyParamsFrom(Network &other);

    /**
     * Structurally identical deep copy (layers, parameters, caches).
     * The Monte-Carlo engine clones one scratch network per worker
     * thread so corrupted evaluations never share mutable state.
     */
    Network clone() const;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/** Softmax + cross-entropy loss over integer class labels. */
class SoftmaxCrossEntropy
{
  public:
    /**
     * Compute mean loss and the gradient w.r.t. logits.
     *
     * @param logits [B, classes].
     * @param labels class index per row; rows whose label is out of
     *        range are rejected.
     * @param grad output gradient tensor (resized to match logits).
     * @return mean cross-entropy loss.
     */
    double lossAndGrad(const Tensor &logits, const std::vector<int> &labels,
                       Tensor &grad) const;
};

} // namespace vboost::dnn

#endif // VBOOST_DNN_NETWORK_HPP
