/**
 * @file
 * Magnitude pruning and compressed-storage estimation: the Deep
 * Compression tie-in of the paper's Sec. 6.3 ("Deep Compression
 * reduces the total size of AlexNet from 240MB to 6.9MB such that it
 * can entirely fit in an on-chip SRAM. This makes our work
 * indispensable to the application of Deep Compression at very low
 * voltages."). Pruned-and-packed weights live entirely in the boosted
 * on-chip memory, so every weight access enjoys the boosted
 * reliability and no DRAM traffic remains.
 */

#ifndef VBOOST_DNN_PRUNE_HPP
#define VBOOST_DNN_PRUNE_HPP

#include <cstdint>

#include "dnn/network.hpp"

namespace vboost::dnn {

/** Result of a pruning pass. */
struct PruneReport
{
    /** Total weight parameters considered. */
    std::uint64_t totalWeights = 0;
    /** Weights set to zero. */
    std::uint64_t zeroedWeights = 0;

    /** Achieved sparsity. */
    double
    sparsity() const
    {
        return totalWeights == 0
                   ? 0.0
                   : static_cast<double>(zeroedWeights) /
                         static_cast<double>(totalWeights);
    }
};

/**
 * Zero out the smallest-magnitude fraction of each weight tensor
 * (per-layer magnitude pruning, the first stage of Deep Compression).
 * Biases are untouched.
 *
 * @param net network to prune in place.
 * @param sparsity fraction of each weight tensor to zero, in [0, 1).
 */
PruneReport magnitudePrune(Network &net, double sparsity);

/** Number of non-zero weight parameters. */
std::uint64_t nonzeroWeights(Network &net);

/** Uncompressed int16 weight storage in bytes. */
std::uint64_t denseWeightBytes(Network &net);

/**
 * Compressed weight storage in bytes under a CSR-style sparse format:
 * 16 bits per non-zero value plus `index_bits` per non-zero for the
 * run-length-coded position (Deep Compression uses 4-bit relative
 * indices), plus one 32-bit row pointer per output row.
 */
std::uint64_t compressedWeightBytes(Network &net, int index_bits = 4);

} // namespace vboost::dnn

#endif // VBOOST_DNN_PRUNE_HPP
