#include "dnn/zoo.hpp"

#include "dnn/layers.hpp"

namespace vboost::dnn {

std::uint64_t
ConvLayerDims::macs() const
{
    return weights() * static_cast<std::uint64_t>(outHeight) *
           static_cast<std::uint64_t>(outWidth);
}

std::uint64_t
ConvLayerDims::weights() const
{
    return static_cast<std::uint64_t>(outChannels) *
           static_cast<std::uint64_t>(inChannels) *
           static_cast<std::uint64_t>(kernel) *
           static_cast<std::uint64_t>(kernel);
}

std::uint64_t
ConvLayerDims::inputs() const
{
    return static_cast<std::uint64_t>(inChannels) *
           static_cast<std::uint64_t>(inHeight) *
           static_cast<std::uint64_t>(inWidth);
}

std::uint64_t
ConvLayerDims::outputs() const
{
    return static_cast<std::uint64_t>(outChannels) *
           static_cast<std::uint64_t>(outHeight) *
           static_cast<std::uint64_t>(outWidth);
}

std::vector<int>
mnistFcLayerSizes()
{
    return {784, 256, 256, 256, 32};
}

Network
buildMnistFc(Rng &rng)
{
    const auto sizes = mnistFcLayerSizes();
    Network net;
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        const std::string name = "fc" + std::to_string(i + 1);
        net.addLayer<Dense>(sizes[i], sizes[i + 1], rng, name);
        if (i + 2 < sizes.size())
            net.addLayer<Relu>(name + ".relu");
    }
    return net;
}

Network
buildAlexNetCifar(Rng &rng)
{
    // 5 conv layers as in AlexNet-for-CIFAR (paper ref [16]), with
    // channel counts scaled for single-core training speed. Spatial
    // plan: 32 -> pool -> 16 -> pool -> 8 (conv3, conv4) -> conv5 ->
    // pool -> 4.
    Network net;
    net.addLayer<Conv2d>(3, 16, 5, 2, rng, "conv1");
    net.addLayer<Relu>("conv1.relu");
    net.addLayer<MaxPool2d>("pool1");
    net.addLayer<Conv2d>(16, 24, 5, 2, rng, "conv2");
    net.addLayer<Relu>("conv2.relu");
    net.addLayer<MaxPool2d>("pool2");
    net.addLayer<Conv2d>(24, 32, 3, 1, rng, "conv3");
    net.addLayer<Relu>("conv3.relu");
    net.addLayer<Conv2d>(32, 32, 3, 1, rng, "conv4");
    net.addLayer<Relu>("conv4.relu");
    net.addLayer<Conv2d>(32, 48, 3, 1, rng, "conv5");
    net.addLayer<Relu>("conv5.relu");
    net.addLayer<MaxPool2d>("pool5");
    net.addLayer<Flatten>("flatten");
    net.addLayer<Dense>(48 * 4 * 4, 10, rng, "fc6");
    return net;
}

std::vector<ConvLayerDims>
alexNetCifarConvDims()
{
    return {
        {3, 16, 5, 32, 32, 32, 32},
        {16, 24, 5, 16, 16, 16, 16},
        {24, 32, 3, 8, 8, 8, 8},
        {32, 32, 3, 8, 8, 8, 8},
        {32, 48, 3, 8, 8, 8, 8},
    };
}

std::vector<ConvLayerDims>
alexNetImageNetConvDims()
{
    // Standard AlexNet conv geometry (paper ref [9]); grouped layers
    // use the per-group input channel count so weights() and macs()
    // match the published totals.
    return {
        {3, 96, 11, 227, 227, 55, 55},
        {48, 256, 5, 27, 27, 27, 27},
        {256, 384, 3, 13, 13, 13, 13},
        {192, 384, 3, 13, 13, 13, 13},
        {192, 256, 3, 13, 13, 13, 13},
    };
}

} // namespace vboost::dnn
