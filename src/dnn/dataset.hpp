/**
 * @file
 * Classification datasets and the synthetic generators that stand in
 * for MNIST and CIFAR-10 (we have no network access to the originals;
 * see DESIGN.md Sec. 1). Each synthetic class is a procedurally drawn
 * prototype; samples add per-image jitter (translation, noise, pixel
 * dropout) so the task is learnable but not trivial, and a trained
 * network's accuracy degrades under weight corruption the same way the
 * paper's Fig. 2/14 curves do.
 */

#ifndef VBOOST_DNN_DATASET_HPP
#define VBOOST_DNN_DATASET_HPP

#include <vector>

#include "dnn/tensor.hpp"

namespace vboost::dnn {

/** A labeled image set. Images are [N, features] (flat, FC networks)
 *  or [N, C, H, W] (conv networks). */
struct Dataset
{
    Tensor images;
    std::vector<int> labels;

    /** Sample count. */
    std::size_t size() const { return labels.size(); }

    /** Copy rows [begin, begin+count) into a contiguous batch. */
    Dataset slice(std::size_t begin, std::size_t count) const;

    /** Gather the given row indices into a new dataset. */
    Dataset gather(const std::vector<std::size_t> &indices) const;
};

/** Generation knobs for the synthetic sets. */
struct SyntheticConfig
{
    /** Number of classes. */
    int classes = 10;
    /** Per-pixel additive Gaussian noise sigma. */
    double noiseSigma = 0.12;
    /** Maximum |translation| in pixels along each axis. */
    int maxShift = 2;
    /** Probability a pixel is dropped to zero. */
    double dropoutProb = 0.03;
};

/**
 * Synthetic MNIST stand-in: 28x28 single-channel digit-like glyphs,
 * flat rows of 784 features in [0, 1].
 *
 * @param n number of samples.
 * @param seed deterministic generation seed; use different seeds for
 *        train and test splits.
 * @param cfg jitter configuration.
 */
Dataset makeSyntheticMnist(int n, std::uint64_t seed,
                           const SyntheticConfig &cfg = {});

/**
 * Synthetic CIFAR-10 stand-in: 32x32x3 textured class prototypes,
 * NCHW tensors in [0, 1].
 */
Dataset makeSyntheticCifar(int n, std::uint64_t seed,
                           const SyntheticConfig &cfg = {});

} // namespace vboost::dnn

#endif // VBOOST_DNN_DATASET_HPP
