#include "dnn/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace vboost::dnn {

Tensor
Network::forward(const Tensor &x, bool train)
{
    if (layers_.empty())
        fatal("Network::forward: empty network");
    Tensor cur = x;
    for (auto &layer : layers_)
        cur = layer->forward(cur, train);
    return cur;
}

Tensor
Network::backward(const Tensor &grad_out)
{
    Tensor cur = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

std::vector<ParamRef>
Network::params()
{
    std::vector<ParamRef> out;
    for (auto &layer : layers_) {
        for (auto &p : layer->params())
            out.push_back(p);
    }
    return out;
}

std::vector<ParamRef>
Network::weightParams()
{
    std::vector<ParamRef> out;
    for (auto &p : params()) {
        if (p.isWeight)
            out.push_back(p);
    }
    return out;
}

void
Network::zeroGrads()
{
    for (auto &layer : layers_)
        layer->zeroGrads();
}

std::vector<int>
Network::predict(const Tensor &x)
{
    Tensor logits = forward(x, /*train=*/false);
    if (logits.rank() != 2)
        fatal("Network::predict: logits must be rank-2");
    const int batch = logits.dim(0), classes = logits.dim(1);
    std::vector<int> out(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
        int best = 0;
        for (int j = 1; j < classes; ++j) {
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        }
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

double
Network::accuracy(const Tensor &x, const std::vector<int> &labels)
{
    if (static_cast<std::size_t>(x.dim(0)) != labels.size())
        fatal("Network::accuracy: batch/label size mismatch");
    const auto pred = predict(x);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i)
        correct += pred[i] == labels[i];
    return static_cast<double>(correct) / static_cast<double>(labels.size());
}

void
Network::copyParamsFrom(Network &other)
{
    auto dst = params();
    auto src = other.params();
    if (dst.size() != src.size())
        fatal("Network::copyParamsFrom: structure mismatch (", dst.size(),
              " vs ", src.size(), " parameters)");
    for (std::size_t i = 0; i < dst.size(); ++i) {
        if (dst[i].value->shape() != src[i].value->shape())
            fatal("Network::copyParamsFrom: shape mismatch at ",
                  dst[i].name);
        *dst[i].value = *src[i].value;
    }
}

Network
Network::clone() const
{
    Network copy;
    copy.layers_.reserve(layers_.size());
    for (const auto &layer : layers_)
        copy.layers_.push_back(layer->clone());
    return copy;
}

double
SoftmaxCrossEntropy::lossAndGrad(const Tensor &logits,
                                 const std::vector<int> &labels,
                                 Tensor &grad) const
{
    if (logits.rank() != 2)
        fatal("SoftmaxCrossEntropy: logits must be rank-2");
    const int batch = logits.dim(0), classes = logits.dim(1);
    if (static_cast<std::size_t>(batch) != labels.size())
        fatal("SoftmaxCrossEntropy: batch/label size mismatch");

    grad = Tensor({batch, classes});
    double total_loss = 0.0;
    const double inv_batch = 1.0 / batch;
    for (int i = 0; i < batch; ++i) {
        const int label = labels[static_cast<std::size_t>(i)];
        if (label < 0 || label >= classes)
            fatal("SoftmaxCrossEntropy: label ", label,
                  " out of range [0,", classes, ")");
        float maxv = logits.at(i, 0);
        for (int j = 1; j < classes; ++j)
            maxv = std::max(maxv, logits.at(i, j));
        double denom = 0.0;
        for (int j = 0; j < classes; ++j)
            // vblint: assoc-ok(softmax denominator in fixed class order)
            denom += std::exp(static_cast<double>(logits.at(i, j) - maxv));
        const double log_denom = std::log(denom);
        // vblint: assoc-ok(batch loss summed in fixed sample order)
        total_loss +=
            log_denom - (static_cast<double>(logits.at(i, label)) - maxv);
        for (int j = 0; j < classes; ++j) {
            const double p =
                std::exp(static_cast<double>(logits.at(i, j) - maxv)) /
                denom;
            grad.at(i, j) = static_cast<float>(
                (p - (j == label ? 1.0 : 0.0)) * inv_batch);
        }
    }
    return total_loss * inv_batch;
}

} // namespace vboost::dnn
