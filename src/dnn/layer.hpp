/**
 * @file
 * Layer interface of the from-scratch DNN engine. Layers own their
 * parameters and gradients and cache whatever the backward pass needs.
 * Parameter tensors are exposed with names and a weight/bias tag so
 * the fault-injection harness can target "the weights of layer k"
 * exactly as the paper does (Sec. 2, Fig. 2).
 */

#ifndef VBOOST_DNN_LAYER_HPP
#define VBOOST_DNN_LAYER_HPP

#include <memory>
#include <string>
#include <vector>

#include "dnn/tensor.hpp"

namespace vboost::dnn {

/** A named reference to one parameter tensor and its gradient. */
struct ParamRef
{
    /** Parameter value (owned by the layer). */
    Tensor *value = nullptr;
    /** Accumulated gradient (owned by the layer). */
    Tensor *grad = nullptr;
    /** Diagnostic name like "fc1.weight". */
    std::string name;
    /** True for multiplicative weights, false for biases. The paper's
     *  experiments inject faults into weights. */
    bool isWeight = false;
};

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Forward pass.
     * @param x input batch.
     * @param train when true, cache activations for backward().
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /**
     * Backward pass: consume dL/d(output), accumulate parameter
     * gradients, return dL/d(input). Only valid after forward(train).
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Parameter references (empty for stateless layers). */
    virtual std::vector<ParamRef> params() { return {}; }

    /**
     * Deep copy of this layer, parameters included. The fault-injection
     * engine clones one scratch network per worker thread from it.
     */
    virtual std::unique_ptr<Layer> clone() const = 0;

    /** Layer name for diagnostics and injection targeting. */
    virtual std::string name() const = 0;

    /** Zero all parameter gradients. */
    void zeroGrads();
};

} // namespace vboost::dnn

#endif // VBOOST_DNN_LAYER_HPP
