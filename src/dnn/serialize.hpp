/**
 * @file
 * Flat binary serialization of network parameters, so benches and
 * examples can train once and reuse the model across runs — and so
 * recovery artifacts (e.g. a learned InputTransform) round-trip like
 * model weights. The format is a magic/version header followed by each
 * parameter tensor's shape and float data, in network parameter order;
 * loading validates the structure against the destination network.
 * The stream overloads carry the same format for in-memory transport
 * (tests, RPC payloads); the path overloads delegate to them.
 */

#ifndef VBOOST_DNN_SERIALIZE_HPP
#define VBOOST_DNN_SERIALIZE_HPP

#include <iosfwd>
#include <string>

#include "dnn/network.hpp"

namespace vboost::dnn {

/** Write all parameters of `net` to `path`. Throws FatalError on I/O
 *  failure. */
void saveParameters(Network &net, const std::string &path);

/** Write all parameters of `net` to a binary stream. Throws
 *  FatalError on stream failure. */
void saveParameters(Network &net, std::ostream &out);

/**
 * Load parameters from `path` into `net`.
 *
 * @return true on success; false if the file does not exist. Throws
 *         FatalError if the file exists but does not match the
 *         network's structure.
 */
bool loadParameters(Network &net, const std::string &path);

/** Load parameters from a binary stream into `net`. Throws FatalError
 *  if the stream is not a parameter image or does not match the
 *  network's structure. */
void loadParameters(Network &net, std::istream &in);

} // namespace vboost::dnn

#endif // VBOOST_DNN_SERIALIZE_HPP
