/**
 * @file
 * Concrete layers: Dense (fully connected), Conv2d (im2col + GEMM),
 * MaxPool2d, ReLU and Flatten. Enough to express the paper's two
 * workloads: the Minerva-style FC-DNN (784-256-256-256-32) and the
 * 5-conv-layer AlexNet-for-CIFAR.
 */

#ifndef VBOOST_DNN_LAYERS_HPP
#define VBOOST_DNN_LAYERS_HPP

#include <string>
#include <vector>

#include "dnn/layer.hpp"

namespace vboost::dnn {

/** Fully connected layer: y = x W + b, x [B, in], W [in, out]. */
class Dense : public Layer
{
  public:
    /**
     * @param in input features.
     * @param out output features.
     * @param rng initializer randomness (He/Kaiming scaling).
     * @param layer_name diagnostic name.
     */
    Dense(int in, int out, Rng &rng, std::string layer_name);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;
    std::string name() const override { return name_; }
    std::unique_ptr<Layer> clone() const override;

    int inFeatures() const { return in_; }
    int outFeatures() const { return out_; }

    Tensor &weight() { return w_; }
    Tensor &bias() { return b_; }

  private:
    int in_, out_;
    std::string name_;
    Tensor w_, b_;
    Tensor wGrad_, bGrad_;
    Tensor cachedInput_;
};

/** 2-D convolution, stride 1, symmetric zero padding; NCHW layout. */
class Conv2d : public Layer
{
  public:
    /**
     * @param in_ch input channels.
     * @param out_ch output channels.
     * @param kernel square kernel size.
     * @param pad symmetric zero padding.
     * @param rng initializer randomness.
     * @param layer_name diagnostic name.
     */
    Conv2d(int in_ch, int out_ch, int kernel, int pad, Rng &rng,
           std::string layer_name);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;
    std::string name() const override { return name_; }
    std::unique_ptr<Layer> clone() const override;

    int inChannels() const { return inCh_; }
    int outChannels() const { return outCh_; }
    int kernel() const { return k_; }

    Tensor &weight() { return w_; }

  private:
    /** Expand input patches into columns: [C*k*k, H*W] per image. */
    void im2col(const Tensor &x, int n, std::vector<float> &cols,
                int h, int w) const;
    /** Scatter column gradients back to an image gradient. */
    void col2im(const std::vector<float> &cols, Tensor &dx, int n,
                int h, int w) const;

    int inCh_, outCh_, k_, pad_;
    std::string name_;
    Tensor w_;  // [outCh, inCh*k*k]
    Tensor b_;  // [outCh]
    Tensor wGrad_, bGrad_;
    Tensor cachedInput_;
};

/** 2x2 max pooling with stride 2 (NCHW). */
class MaxPool2d : public Layer
{
  public:
    explicit MaxPool2d(std::string layer_name);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }
    std::unique_ptr<Layer> clone() const override;

  private:
    std::string name_;
    std::vector<int> argmax_;
    std::vector<int> inShape_;
};

/** Elementwise rectified linear unit. */
class Relu : public Layer
{
  public:
    explicit Relu(std::string layer_name);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }
    std::unique_ptr<Layer> clone() const override;

  private:
    std::string name_;
    std::vector<bool> mask_;
};

/** Collapse NCHW feature maps to [B, C*H*W] rows. */
class Flatten : public Layer
{
  public:
    explicit Flatten(std::string layer_name);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }
    std::unique_ptr<Layer> clone() const override;

  private:
    std::string name_;
    std::vector<int> inShape_;
};

} // namespace vboost::dnn

#endif // VBOOST_DNN_LAYERS_HPP
