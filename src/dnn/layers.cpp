#include "dnn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hpp"
#include "dnn/backend/backend.hpp"

namespace vboost::dnn {

void
Layer::zeroGrads()
{
    for (auto &p : params())
        p.grad->fill(0.0f);
}

// ---------------------------------------------------------------- Dense

Dense::Dense(int in, int out, Rng &rng, std::string layer_name)
    : in_(in), out_(out), name_(std::move(layer_name)),
      w_(Tensor::randn({in, out}, rng, std::sqrt(2.0 / in))),
      b_(Tensor::zeros({out})),
      wGrad_(Tensor::zeros({in, out})),
      bGrad_(Tensor::zeros({out}))
{
    if (in <= 0 || out <= 0)
        fatal("Dense ", name_, ": dimensions must be positive");
}

Tensor
Dense::forward(const Tensor &x, bool train)
{
    if (x.rank() != 2 || x.dim(1) != in_)
        fatal("Dense ", name_, ": expected [B, ", in_, "], got ",
              x.shapeString());
    const int batch = x.dim(0);
    Tensor y = Tensor::uninitialized({batch, out_});
    activeBackend().gemm(x.data(), w_.data(), y.data(), batch, in_, out_,
                         /*accumulate=*/false);
    for (int i = 0; i < batch; ++i) {
        float *row = y.data() + static_cast<std::size_t>(i) * out_;
        for (int j = 0; j < out_; ++j)
            // vblint: assoc-ok(one bias add per element, fixed j order)
            row[j] += b_[static_cast<std::size_t>(j)];
    }
    if (train)
        cachedInput_ = x;
    return y;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    if (cachedInput_.numel() == 0)
        panic("Dense ", name_, ": backward without cached forward");
    const int batch = grad_out.dim(0);
    // dW += x^T g ; db += sum_rows g ; dx = g W^T.
    gemmTransA(cachedInput_.data(), grad_out.data(), wGrad_.data(), in_,
               batch, out_, /*accumulate=*/true);
    for (int i = 0; i < batch; ++i)
        for (int j = 0; j < out_; ++j)
            bGrad_[static_cast<std::size_t>(j)] += grad_out.at(i, j);
    Tensor dx({batch, in_});
    gemmTransB(grad_out.data(), w_.data(), dx.data(), batch, out_, in_);
    return dx;
}

std::vector<ParamRef>
Dense::params()
{
    return {{&w_, &wGrad_, name_ + ".weight", true},
            {&b_, &bGrad_, name_ + ".bias", false}};
}

// --------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int in_ch, int out_ch, int kernel, int pad, Rng &rng,
               std::string layer_name)
    : inCh_(in_ch), outCh_(out_ch), k_(kernel), pad_(pad),
      name_(std::move(layer_name)),
      w_(Tensor::randn({out_ch, in_ch * kernel * kernel}, rng,
                       std::sqrt(2.0 / (in_ch * kernel * kernel)))),
      b_(Tensor::zeros({out_ch})),
      wGrad_(Tensor::zeros({out_ch, in_ch * kernel * kernel})),
      bGrad_(Tensor::zeros({out_ch}))
{
    if (in_ch <= 0 || out_ch <= 0 || kernel <= 0 || pad < 0)
        fatal("Conv2d ", name_, ": invalid geometry");
}

void
Conv2d::im2col(const Tensor &x, int n, std::vector<float> &cols, int h,
               int w) const
{
    // cols is [inCh*k*k, h*w]; all backends produce bitwise-identical
    // columns (pure element copies), so forward and backward may run
    // on different backends without skew.
    const ConvGeom g{inCh_, outCh_, k_, pad_, h, w};
    const float *image = x.data() + static_cast<std::size_t>(n) *
                                        static_cast<std::size_t>(inCh_) *
                                        static_cast<std::size_t>(h) *
                                        static_cast<std::size_t>(w);
    activeBackend().im2col(image, g, cols);
}

void
Conv2d::col2im(const std::vector<float> &cols, Tensor &dx, int n, int h,
               int w) const
{
    const int out_h = h + 2 * pad_ - k_ + 1;
    const int out_w = w + 2 * pad_ - k_ + 1;
    const std::size_t spatial =
        static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);
    std::size_t row = 0;
    for (int c = 0; c < inCh_; ++c) {
        for (int ki = 0; ki < k_; ++ki) {
            for (int kj = 0; kj < k_; ++kj, ++row) {
                const float *src = cols.data() + row * spatial;
                std::size_t idx = 0;
                for (int oi = 0; oi < out_h; ++oi) {
                    const int ii = oi + ki - pad_;
                    for (int oj = 0; oj < out_w; ++oj, ++idx) {
                        const int jj = oj + kj - pad_;
                        if (ii >= 0 && ii < h && jj >= 0 && jj < w)
                            dx.at(n, c, ii, jj) += src[idx];
                    }
                }
            }
        }
    }
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    if (x.rank() != 4 || x.dim(1) != inCh_)
        fatal("Conv2d ", name_, ": expected NCHW with C=", inCh_, ", got ",
              x.shapeString());
    const int batch = x.dim(0), h = x.dim(2), w = x.dim(3);
    const int out_h = h + 2 * pad_ - k_ + 1;
    const int out_w = w + 2 * pad_ - k_ + 1;
    if (out_h <= 0 || out_w <= 0)
        fatal("Conv2d ", name_, ": kernel larger than padded input");

    Tensor y = Tensor::uninitialized({batch, outCh_, out_h, out_w});
    const ConvGeom g{inCh_, outCh_, k_, pad_, h, w};
    const std::size_t spatial = g.spatial();
    const std::size_t per_image = static_cast<std::size_t>(inCh_) *
                                  static_cast<std::size_t>(h) *
                                  static_cast<std::size_t>(w);
    const Backend &backend = activeBackend();
    std::vector<float> cols(static_cast<std::size_t>(g.patch()) * spatial);
    for (int n = 0; n < batch; ++n) {
        // y[n] = W [outCh, patch] * im2col(x[n]) [patch, spatial] + b.
        float *ydst = y.data() +
            static_cast<std::size_t>(n) * outCh_ * spatial;
        backend.im2colConv(x.data() + static_cast<std::size_t>(n) *
                                          per_image,
                           w_.data(), b_.data(), ydst, g, cols);
    }
    if (train)
        cachedInput_ = x;
    return y;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    if (cachedInput_.numel() == 0)
        panic("Conv2d ", name_, ": backward without cached forward");
    const Tensor &x = cachedInput_;
    const int batch = x.dim(0), h = x.dim(2), w = x.dim(3);
    const int out_h = grad_out.dim(2), out_w = grad_out.dim(3);
    const int patch = inCh_ * k_ * k_;
    const std::size_t spatial =
        static_cast<std::size_t>(out_h) * static_cast<std::size_t>(out_w);

    Tensor dx({batch, inCh_, h, w});
    std::vector<float> cols(static_cast<std::size_t>(patch) * spatial);
    std::vector<float> dcols(static_cast<std::size_t>(patch) * spatial);
    for (int n = 0; n < batch; ++n) {
        const float *g = grad_out.data() +
            static_cast<std::size_t>(n) * outCh_ * spatial;
        // dW += g [outCh, spatial] * cols^T [spatial, patch].
        im2col(x, n, cols, h, w);
        gemmTransB(g, cols.data(), wGrad_.data(), outCh_,
                   static_cast<int>(spatial), patch, /*accumulate=*/true);
        // db += row sums of g.
        for (int oc = 0; oc < outCh_; ++oc) {
            const float *chan = g + static_cast<std::size_t>(oc) * spatial;
            float acc = 0.0f;
            for (std::size_t i = 0; i < spatial; ++i)
                // vblint: assoc-ok(row sum in fixed spatial order)
                acc += chan[i];
            bGrad_[static_cast<std::size_t>(oc)] += acc;
        }
        // dcols = W^T [patch, outCh] * g [outCh, spatial].
        gemmTransA(w_.data(), g, dcols.data(), patch, outCh_,
                   static_cast<int>(spatial));
        col2im(dcols, dx, n, h, w);
    }
    return dx;
}

std::vector<ParamRef>
Conv2d::params()
{
    return {{&w_, &wGrad_, name_ + ".weight", true},
            {&b_, &bGrad_, name_ + ".bias", false}};
}

// ------------------------------------------------------------ MaxPool2d

MaxPool2d::MaxPool2d(std::string layer_name) : name_(std::move(layer_name))
{
}

Tensor
MaxPool2d::forward(const Tensor &x, bool train)
{
    if (x.rank() != 4)
        fatal("MaxPool2d ", name_, ": expected NCHW, got ",
              x.shapeString());
    const int batch = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    if (h % 2 != 0 || w % 2 != 0)
        fatal("MaxPool2d ", name_, ": odd spatial size ", h, "x", w);
    const int oh = h / 2, ow = w / 2;
    // Every output element is written below (backend pool or the
    // argmax loop), so skip the zero-fill.
    Tensor y = Tensor::uninitialized({batch, c, oh, ow});
    if (!train) {
        // Inference path: no argmax bookkeeping needed, so the pooling
        // itself goes through the active compute backend (§12).
        activeBackend().maxPool2x2(x.data(), y.data(), batch, c, h, w);
        return y;
    }
    argmax_.assign(y.numel(), 0);
    inShape_ = x.shape();
    std::size_t oidx = 0;
    for (int n = 0; n < batch; ++n) {
        for (int ch = 0; ch < c; ++ch) {
            for (int i = 0; i < oh; ++i) {
                for (int j = 0; j < ow; ++j, ++oidx) {
                    float best = x.at(n, ch, 2 * i, 2 * j);
                    int best_di = 0, best_dj = 0;
                    for (int di = 0; di < 2; ++di) {
                        for (int dj = 0; dj < 2; ++dj) {
                            const float v =
                                x.at(n, ch, 2 * i + di, 2 * j + dj);
                            if (v > best) {
                                best = v;
                                best_di = di;
                                best_dj = dj;
                            }
                        }
                    }
                    y[oidx] = best;
                    if (train)
                        argmax_[oidx] = best_di * 2 + best_dj;
                }
            }
        }
    }
    return y;
}

Tensor
MaxPool2d::backward(const Tensor &grad_out)
{
    if (inShape_.empty())
        panic("MaxPool2d ", name_, ": backward without cached forward");
    Tensor dx(inShape_);
    const int batch = inShape_[0], c = inShape_[1];
    const int oh = inShape_[2] / 2, ow = inShape_[3] / 2;
    std::size_t oidx = 0;
    for (int n = 0; n < batch; ++n) {
        for (int ch = 0; ch < c; ++ch) {
            for (int i = 0; i < oh; ++i) {
                for (int j = 0; j < ow; ++j, ++oidx) {
                    const int di = argmax_[oidx] / 2;
                    const int dj = argmax_[oidx] % 2;
                    dx.at(n, ch, 2 * i + di, 2 * j + dj) += grad_out[oidx];
                }
            }
        }
    }
    return dx;
}

// ----------------------------------------------------------------- Relu

Relu::Relu(std::string layer_name) : name_(std::move(layer_name)) {}

Tensor
Relu::forward(const Tensor &x, bool train)
{
    if (!train) {
        // Write straight into the output instead of copy-then-rewrite.
        Tensor y = Tensor::uninitialized(x.shape());
        activeBackend().relu(x.data(), y.data(), y.numel());
        return y;
    }
    Tensor y = x;
    mask_.assign(x.numel(), false);
    for (std::size_t i = 0; i < y.numel(); ++i) {
        if (y[i] > 0.0f) {
            mask_[i] = true;
        } else {
            y[i] = 0.0f;
        }
    }
    return y;
}

Tensor
Relu::backward(const Tensor &grad_out)
{
    if (mask_.size() != grad_out.numel())
        panic("Relu ", name_, ": backward shape mismatch");
    Tensor dx = grad_out;
    for (std::size_t i = 0; i < dx.numel(); ++i) {
        if (!mask_[i])
            dx[i] = 0.0f;
    }
    return dx;
}

// -------------------------------------------------------------- Flatten

Flatten::Flatten(std::string layer_name) : name_(std::move(layer_name)) {}

Tensor
Flatten::forward(const Tensor &x, bool train)
{
    if (x.rank() < 2)
        fatal("Flatten ", name_, ": expected rank >= 2");
    if (train)
        inShape_ = x.shape();
    int features = 1;
    for (int d = 1; d < x.rank(); ++d)
        features *= x.dim(d);
    return x.reshaped({x.dim(0), features});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    if (inShape_.empty())
        panic("Flatten ", name_, ": backward without cached forward");
    return grad_out.reshaped(inShape_);
}

// ---------------------------------------------------------------- clone

std::unique_ptr<Layer>
Dense::clone() const
{
    return std::unique_ptr<Layer>(new Dense(*this));
}

std::unique_ptr<Layer>
Conv2d::clone() const
{
    return std::unique_ptr<Layer>(new Conv2d(*this));
}

std::unique_ptr<Layer>
MaxPool2d::clone() const
{
    return std::unique_ptr<Layer>(new MaxPool2d(*this));
}

std::unique_ptr<Layer>
Relu::clone() const
{
    return std::unique_ptr<Layer>(new Relu(*this));
}

std::unique_ptr<Layer>
Flatten::clone() const
{
    return std::unique_ptr<Layer>(new Flatten(*this));
}

} // namespace vboost::dnn
