/**
 * @file
 * Model zoo: the two network topologies the paper evaluates.
 *
 * - buildMnistFc(): the Minerva-style fully connected DNN the paper
 *   uses for the MNIST study (Sec. 2): 4 weight layers of size
 *   784 x 256 x 256 x 256 x 32 with ReLU between hidden layers. The
 *   32-wide output layer uses the first 10 outputs as digit classes
 *   (the remaining outputs are architectural padding, as in Minerva).
 *
 * - buildAlexNetCifar(): AlexNet-for-CIFAR-10 with 5 convolution
 *   layers (Sec. 6.3 / ref [16]), scaled so it trains in about a
 *   minute on one CPU core while keeping the 5-conv-layer structure
 *   the Eyeriss Row-Stationary activity model consumes.
 */

#ifndef VBOOST_DNN_ZOO_HPP
#define VBOOST_DNN_ZOO_HPP

#include "dnn/network.hpp"

namespace vboost::dnn {

/** Layer dimensions of a convolution layer, for dataflow models. */
struct ConvLayerDims
{
    int inChannels = 0;
    int outChannels = 0;
    int kernel = 0;
    int inHeight = 0;
    int inWidth = 0;
    int outHeight = 0;
    int outWidth = 0;

    /** Multiply-accumulate operations in this layer (one image). */
    std::uint64_t macs() const;
    /** Filter weight count. */
    std::uint64_t weights() const;
    /** Input activation count. */
    std::uint64_t inputs() const;
    /** Output activation count. */
    std::uint64_t outputs() const;
};

/** The paper's FC-DNN: 784-256-256-256-32, ReLU activations. */
Network buildMnistFc(Rng &rng);

/** Hidden-layer sizes of the FC-DNN, for documentation/tests. */
std::vector<int> mnistFcLayerSizes();

/** 5-conv-layer AlexNet for 32x32x3 CIFAR-style inputs. */
Network buildAlexNetCifar(Rng &rng);

/** Conv layer geometry of buildAlexNetCifar(), in order conv1..conv5. */
std::vector<ConvLayerDims> alexNetCifarConvDims();

/**
 * Conv layer geometry of the *full* AlexNet of the paper's ref [9]
 * (224x224 ImageNet input, 5 conv layers). Used by the Eyeriss-RS
 * activity model to reproduce the Table-3 access ratios at the
 * paper's scale even though the trainable network above is smaller.
 */
std::vector<ConvLayerDims> alexNetImageNetConvDims();

} // namespace vboost::dnn

#endif // VBOOST_DNN_ZOO_HPP
