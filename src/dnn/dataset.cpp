#include "dnn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hpp"

namespace vboost::dnn {

Dataset
Dataset::slice(std::size_t begin, std::size_t count) const
{
    if (begin + count > size())
        fatal("Dataset::slice: range [", begin, ",", begin + count,
              ") exceeds size ", size());
    std::vector<std::size_t> idx(count);
    for (std::size_t i = 0; i < count; ++i)
        idx[i] = begin + i;
    return gather(idx);
}

Dataset
Dataset::gather(const std::vector<std::size_t> &indices) const
{
    const std::size_t row =
        images.numel() / static_cast<std::size_t>(images.dim(0));
    std::vector<int> shape = images.shape();
    shape[0] = static_cast<int>(indices.size());
    Dataset out;
    out.images = Tensor(shape);
    out.labels.resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::size_t src = indices[i];
        if (src >= size())
            fatal("Dataset::gather: index ", src, " out of range");
        std::memcpy(out.images.data() + i * row, images.data() + src * row,
                    row * sizeof(float));
        out.labels[i] = labels[src];
    }
    return out;
}

namespace {

/**
 * Class prototypes are smooth random fields: a sum of a few random
 * 2-D cosine modes whose coefficients are derived from the class id.
 * Distinct classes get well-separated prototypes; intra-class samples
 * jitter around the prototype.
 */
class PrototypeField
{
  public:
    PrototypeField(int class_id, int channel, int modes)
    {
        Rng rng(0xc1a55ull * 1315423911ull ^
                (static_cast<std::uint64_t>(class_id) << 16) ^
                static_cast<std::uint64_t>(channel));
        for (int m = 0; m < modes; ++m) {
            Mode mode;
            mode.fx = rng.uniform(0.5, 3.0);
            mode.fy = rng.uniform(0.5, 3.0);
            mode.px = rng.uniform(0.0, 2.0 * M_PI);
            mode.py = rng.uniform(0.0, 2.0 * M_PI);
            mode.amp = rng.uniform(0.4, 1.0);
            modes_.push_back(mode);
        }
    }

    /** Field value at normalized coordinates (u, v) in [0, 1]. */
    double
    value(double u, double v) const
    {
        double acc = 0.0;
        for (const auto &m : modes_) {
            // vblint: assoc-ok(modes summed in fixed vector order)
            acc += m.amp * std::cos(2.0 * M_PI * m.fx * u + m.px) *
                   std::cos(2.0 * M_PI * m.fy * v + m.py);
        }
        return acc;
    }

  private:
    struct Mode
    {
        double fx, fy, px, py, amp;
    };
    std::vector<Mode> modes_;
};

/** Clamp to the valid pixel range. */
float
clampPixel(double v)
{
    return static_cast<float>(std::clamp(v, 0.0, 1.0));
}

Dataset
makeSynthetic(int n, std::uint64_t seed, const SyntheticConfig &cfg,
              int channels, int side, int modes)
{
    if (n <= 0)
        fatal("makeSynthetic: sample count must be positive, got ", n);
    if (cfg.classes < 2)
        fatal("makeSynthetic: at least two classes required");

    // Prototype pixel grids per class/channel, rendered once.
    std::vector<std::vector<float>> protos(
        static_cast<std::size_t>(cfg.classes * channels));
    for (int cls = 0; cls < cfg.classes; ++cls) {
        for (int ch = 0; ch < channels; ++ch) {
            PrototypeField field(cls, ch, modes);
            auto &grid = protos[static_cast<std::size_t>(
                cls * channels + ch)];
            grid.resize(static_cast<std::size_t>(side * side));
            for (int i = 0; i < side; ++i) {
                for (int j = 0; j < side; ++j) {
                    const double u = (i + 0.5) / side;
                    const double v = (j + 0.5) / side;
                    // Map the smooth field through a soft threshold to
                    // get glyph-like bright strokes on dark background.
                    const double raw = field.value(u, v);
                    const double pix = 1.0 / (1.0 + std::exp(-4.0 * raw));
                    grid[static_cast<std::size_t>(i * side + j)] =
                        clampPixel(pix);
                }
            }
        }
    }

    Dataset ds;
    if (channels == 1)
        ds.images = Tensor({n, side * side});
    else
        ds.images = Tensor({n, channels, side, side});
    ds.labels.resize(static_cast<std::size_t>(n));

    Rng rng(seed);
    const std::size_t row_size =
        static_cast<std::size_t>(channels) * side * side;
    for (int s = 0; s < n; ++s) {
        const int cls = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(cfg.classes)));
        ds.labels[static_cast<std::size_t>(s)] = cls;
        const int shift_i = static_cast<int>(rng.uniformInt(
                                2 * cfg.maxShift + 1)) - cfg.maxShift;
        const int shift_j = static_cast<int>(rng.uniformInt(
                                2 * cfg.maxShift + 1)) - cfg.maxShift;
        float *dst = ds.images.data() + static_cast<std::size_t>(s) *
                                            row_size;
        for (int ch = 0; ch < channels; ++ch) {
            const auto &grid = protos[static_cast<std::size_t>(
                cls * channels + ch)];
            for (int i = 0; i < side; ++i) {
                for (int j = 0; j < side; ++j) {
                    const int si = std::clamp(i + shift_i, 0, side - 1);
                    const int sj = std::clamp(j + shift_j, 0, side - 1);
                    double pix = grid[static_cast<std::size_t>(
                        si * side + sj)];
                    // vblint: assoc-ok(single noise draw per pixel, fixed scan order)
                    pix += rng.normal(0.0, cfg.noiseSigma);
                    if (cfg.dropoutProb > 0.0 &&
                        rng.bernoulli(cfg.dropoutProb)) {
                        pix = 0.0;
                    }
                    dst[static_cast<std::size_t>(ch) * side * side +
                        static_cast<std::size_t>(i * side + j)] =
                        clampPixel(pix);
                }
            }
        }
    }
    return ds;
}

} // namespace

Dataset
makeSyntheticMnist(int n, std::uint64_t seed, const SyntheticConfig &cfg)
{
    return makeSynthetic(n, seed, cfg, /*channels=*/1, /*side=*/28,
                         /*modes=*/3);
}

Dataset
makeSyntheticCifar(int n, std::uint64_t seed, const SyntheticConfig &cfg)
{
    return makeSynthetic(n, seed, cfg, /*channels=*/3, /*side=*/32,
                         /*modes=*/4);
}

} // namespace vboost::dnn
