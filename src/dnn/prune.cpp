#include "dnn/prune.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hpp"

namespace vboost::dnn {

PruneReport
magnitudePrune(Network &net, double sparsity)
{
    if (sparsity < 0.0 || sparsity >= 1.0)
        fatal("magnitudePrune: sparsity must be in [0,1), got ",
              sparsity);

    PruneReport report;
    for (auto &p : net.weightParams()) {
        Tensor &w = *p.value;
        report.totalWeights += w.numel();
        if (sparsity == 0.0)
            continue;

        // Per-layer threshold at the requested magnitude quantile.
        std::vector<float> mags(w.numel());
        for (std::size_t i = 0; i < w.numel(); ++i)
            mags[i] = std::fabs(w[i]);
        const auto k = static_cast<std::size_t>(
            sparsity * static_cast<double>(w.numel()));
        if (k == 0)
            continue;
        std::nth_element(mags.begin(),
                         mags.begin() + static_cast<long>(k - 1),
                         mags.end());
        const float threshold = mags[k - 1];

        std::size_t zeroed = 0;
        for (std::size_t i = 0; i < w.numel(); ++i) {
            // Zero at most k elements so ties at the threshold don't
            // overshoot the requested sparsity.
            if (zeroed < k && std::fabs(w[i]) <= threshold) {
                w[i] = 0.0f;
                ++zeroed;
            }
        }
        report.zeroedWeights += zeroed;
    }
    return report;
}

std::uint64_t
nonzeroWeights(Network &net)
{
    std::uint64_t nz = 0;
    for (auto &p : net.weightParams()) {
        const Tensor &w = *p.value;
        for (std::size_t i = 0; i < w.numel(); ++i)
            nz += w[i] != 0.0f;
    }
    return nz;
}

std::uint64_t
denseWeightBytes(Network &net)
{
    std::uint64_t elems = 0;
    for (auto &p : net.weightParams())
        elems += p.value->numel();
    return elems * 2;
}

std::uint64_t
compressedWeightBytes(Network &net, int index_bits)
{
    if (index_bits < 1 || index_bits > 32)
        fatal("compressedWeightBytes: index_bits must be in [1,32]");

    std::uint64_t bits = 0;
    for (auto &p : net.weightParams()) {
        const Tensor &w = *p.value;
        std::uint64_t nz = 0;
        for (std::size_t i = 0; i < w.numel(); ++i)
            nz += w[i] != 0.0f;
        // Zero-run lengths longer than 2^index_bits - 1 need filler
        // entries (as in Deep Compression); approximate by the
        // expected filler count for a uniform distribution of zeros.
        const double zero_frac =
            1.0 - static_cast<double>(nz) /
                      static_cast<double>(std::max<std::size_t>(
                          w.numel(), 1));
        const double max_run = std::pow(2.0, index_bits) - 1.0;
        const double fillers =
            zero_frac >= 1.0
                ? 0.0
                : static_cast<double>(w.numel()) * zero_frac / max_run;
        const double entries = static_cast<double>(nz) + fillers;
        bits += static_cast<std::uint64_t>(
            entries * (16.0 + static_cast<double>(index_bits)));
        // Row pointers: one 32-bit offset per output row.
        const int rows = w.rank() >= 2 ? w.dim(w.rank() - 1) : 1;
        bits += static_cast<std::uint64_t>(rows) * 32ull;
    }
    return (bits + 7) / 8;
}

} // namespace vboost::dnn
