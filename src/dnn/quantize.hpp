/**
 * @file
 * Post-training int16 quantization: how network parameters and inputs
 * are laid out as the 16-bit words the accelerator stores in SRAM.
 * The fault-injection path quantizes a tensor, flips bits in the raw
 * words according to a fault map, and dequantizes the corrupted words
 * back (paper Sec. 5.1: "The fault map thus generated, is overlaid
 * with the SRAM array to obtain a new corrupted set of weights and
 * activations used for inference").
 */

#ifndef VBOOST_DNN_QUANTIZE_HPP
#define VBOOST_DNN_QUANTIZE_HPP

#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"
#include "dnn/network.hpp"
#include "dnn/tensor.hpp"

namespace vboost::dnn {

/**
 * Pick the Q-format for a tensor: the largest number of fractional
 * bits whose range covers the tensor's max |value| — no unused
 * headroom bits, since a fault in a never-used top bit would be a
 * disproportionately large perturbation.
 */
FixedPointCodec chooseCodec(const Tensor &t);

/** A tensor quantized to raw int16 storage words plus its codec. */
struct QuantizedTensor
{
    std::vector<std::int16_t> words;
    FixedPointCodec codec;
    std::vector<int> shape;

    /** Element count. */
    std::size_t size() const { return words.size(); }
};

/** Quantize a float tensor into int16 storage words. */
QuantizedTensor quantize(const Tensor &t);

/** Quantize with an explicit codec (shared-format scenarios). */
QuantizedTensor quantize(const Tensor &t, const FixedPointCodec &codec);

/** Dequantize storage words back to a float tensor. */
Tensor dequantize(const QuantizedTensor &q);

/**
 * Round-trip a tensor through its int16 storage format without
 * faults: what the accelerator computes with under error-free SRAM.
 */
Tensor quantizeRoundTrip(const Tensor &t);

/**
 * Deployment step: clamp every parameter to [-limit, limit] before
 * quantization, as a fixed-point accelerator toolchain does when
 * mapping a float model onto a bounded Q-format. Keeps the storage
 * format free of rarely-used headroom bits whose faults would be
 * disproportionately damaging.
 */
void clipParameters(Network &net, float limit);

} // namespace vboost::dnn

#endif // VBOOST_DNN_QUANTIZE_HPP
