/**
 * @file
 * AVX-512 GEMM inner kernels for the vectorized backend. Same bitwise
 * contract as vectorized.cpp (DESIGN.md §12): every output element
 * accumulates its products in ascending-k order, one product at a
 * time, with separate multiply and add instructions (no FMA; the TU
 * is additionally built with -ffp-contract=off). Masked loads/stores
 * handle row/column tails by touching exact element subsets, so the
 * result is bitwise-identical to the scalar reference on finite
 * inputs regardless of shape.
 *
 * This is the only translation unit compiled with -mavx512f; callers
 * must gate on avx512GemmAvailable(), which performs the runtime CPU
 * check.
 */

#include "dnn/backend/impl.hpp"

#if defined(VBOOST_HAVE_AVX512)

#include <algorithm>
#include <cstring>
#include <immintrin.h>
#include <vector>

namespace vboost::dnn::detail {

namespace {

/**
 * 8x32 micro-kernel: eight C rows x two zmm columns, sixteen resident
 * accumulators (AVX-512 has 32 vector registers). C is loaded,
 * accumulated and stored back, so K blocking preserves each element's
 * left-to-right addition chain.
 */
inline void
micro8x32(const float *a, int lda, const float *b, float *c, int ldc,
          int kb, int n)
{
    __m512 acc[8][2];
    for (int r = 0; r < 8; ++r) {
        acc[r][0] = _mm512_loadu_ps(c + static_cast<std::size_t>(r) * ldc);
        acc[r][1] =
            _mm512_loadu_ps(c + static_cast<std::size_t>(r) * ldc + 16);
    }
    const float *bp = b;
    for (int kk = 0; kk < kb; ++kk, bp += n) {
        const __m512 b0 = _mm512_loadu_ps(bp);
        const __m512 b1 = _mm512_loadu_ps(bp + 16);
        for (int r = 0; r < 8; ++r) {
            const __m512 av =
                _mm512_set1_ps(a[static_cast<std::size_t>(r) * lda + kk]);
            acc[r][0] = _mm512_add_ps(acc[r][0], _mm512_mul_ps(av, b0));
            acc[r][1] = _mm512_add_ps(acc[r][1], _mm512_mul_ps(av, b1));
        }
    }
    for (int r = 0; r < 8; ++r) {
        _mm512_storeu_ps(c + static_cast<std::size_t>(r) * ldc, acc[r][0]);
        _mm512_storeu_ps(c + static_cast<std::size_t>(r) * ldc + 16,
                         acc[r][1]);
    }
}

/** Masked tail micro-kernel: up to 8 rows x up to 16 columns. The
 *  mask picks the live columns; masked-off lanes are never read from
 *  or written to C. */
inline void
microMasked(const float *a, int lda, int rows, const float *b, float *c,
            int ldc, int kb, int n, __mmask16 mask)
{
    __m512 acc[8];
    for (int r = 0; r < rows; ++r)
        acc[r] = _mm512_maskz_loadu_ps(
            mask, c + static_cast<std::size_t>(r) * ldc);
    const float *bp = b;
    for (int kk = 0; kk < kb; ++kk, bp += n) {
        const __m512 bv = _mm512_maskz_loadu_ps(mask, bp);
        for (int r = 0; r < rows; ++r) {
            const __m512 av =
                _mm512_set1_ps(a[static_cast<std::size_t>(r) * lda + kk]);
            acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(av, bv));
        }
    }
    for (int r = 0; r < rows; ++r)
        _mm512_mask_storeu_ps(c + static_cast<std::size_t>(r) * ldc, mask,
                              acc[r]);
}

/**
 * Pack the full 32-column tiles of a B block into tile-contiguous
 * [tile][kk][32] layout so the micro-kernel streams 128-byte rows
 * instead of striding n floats (which thrashes the DTLB when n spans
 * a page). Packing only moves bytes — arithmetic order is untouched.
 */
inline void
packB(const float *bblk, int kb, int n, int tiles, float *pack)
{
    for (int t = 0; t < tiles; ++t) {
        const float *src = bblk + static_cast<std::size_t>(t) * 32;
        float *dst = pack + static_cast<std::size_t>(t) * kb * 32;
        // vblint: assoc-ok(pointer stride advance, not a float reduction)
        for (int kk = 0; kk < kb; ++kk, src += n, dst += 32) {
            _mm512_storeu_ps(dst, _mm512_loadu_ps(src));
            _mm512_storeu_ps(dst + 16, _mm512_loadu_ps(src + 16));
        }
    }
}

} // namespace

bool
avx512GemmAvailable()
{
    static const bool supported = __builtin_cpu_supports("avx512f");
    return supported;
}

void
im2colAvx512(const float *image, const ConvGeom &g,
             std::vector<float> &cols)
{
    const int out_h = g.outH();
    const int out_w = g.outW();
    const std::size_t spatial = g.spatial();
    cols.resize(static_cast<std::size_t>(g.patch()) * spatial);
    // Each cols row (one (c, ki, kj) patch element) is out_h segments
    // of out_w floats; within an output row the valid sources form a
    // contiguous interval of the input row, so a single fault-free
    // expand-load (reads exactly popcount(mask) floats from the first
    // valid element, zeroes the rest) plus one store moves each
    // 16-output segment. The masks depend only on kj and the segment,
    // not on oi, so they are hoisted out of the row loop.
    constexpr int kMaxSeg = 8; // out_w <= 128, enforced by the caller
    const int nseg = (out_w + 15) / 16;
    __mmask16 load_mask[kMaxSeg];
    __mmask16 store_mask[kMaxSeg];
    int src_off[kMaxSeg];
    const __m512 zero = _mm512_setzero_ps();
    std::size_t row = 0;
    for (int c = 0; c < g.inCh; ++c) {
        const float *chan = image + static_cast<std::size_t>(c) *
                                        static_cast<std::size_t>(g.h) *
                                        static_cast<std::size_t>(g.w);
        for (int ki = 0; ki < g.kernel; ++ki) {
            for (int kj = 0; kj < g.kernel; ++kj, ++row) {
                // Valid output columns: 0 <= oj + kj - pad < w.
                const int oj_lo = std::max(0, g.pad - kj);
                const int oj_hi = std::min(out_w, g.w + g.pad - kj);
                for (int s = 0; s < nseg; ++s) {
                    const int j = 16 * s;
                    const int len = std::min(16, out_w - j);
                    const int lo = std::max(0, oj_lo - j);
                    const int hi = std::min(len, oj_hi - j);
                    load_mask[s] =
                        hi > lo ? static_cast<__mmask16>(
                                      ((1u << hi) - 1u) & ~((1u << lo) - 1u))
                                : static_cast<__mmask16>(0);
                    store_mask[s] = static_cast<__mmask16>(
                        len == 16 ? 0xffffu : (1u << len) - 1u);
                    // Offset of the first valid source float; pinned to
                    // 0 for all-padding segments so the (zero-element)
                    // expand-load never forms an out-of-row pointer.
                    src_off[s] =
                        hi > lo ? std::max(j, oj_lo) + kj - g.pad : 0;
                }
                float *base = cols.data() + row * spatial;
                // Stride-matched fast path (out_w == w, every conv in
                // the repro): within the live rows, src and dst are
                // both flat streams — dst position p maps to source
                // chan[(ii_a + p/w)*w + (p%w) + kj - pad] = src[p] for
                // src = chan + ii_a*w + (kj - pad) — so whole planes
                // move as 16-lane chunks under a periodic column mask
                // (period w divides or is a multiple of 16 for
                // w in {8, 16, 32}). Masked-off (padding) lanes are
                // never accessed and come out as the +0.0 the scalar
                // expansion writes.
                if (out_w == g.w &&
                    (out_w == 8 || out_w == 16 || out_w == 32)) {
                    const int oi_a = std::max(0, g.pad - ki);
                    const int oi_b = std::min(out_h, g.h + g.pad - ki);
                    const auto zero_run = [&](float *p, std::size_t nz) {
                        std::size_t z = 0;
                        for (; z + 16 <= nz; z += 16)
                            _mm512_storeu_ps(p + z, zero);
                        if (z < nz)
                            _mm512_mask_storeu_ps(
                                p + z,
                                static_cast<__mmask16>((1u << (nz - z)) -
                                                       1u),
                                zero);
                    };
                    zero_run(base, static_cast<std::size_t>(oi_a) * out_w);
                    zero_run(base + static_cast<std::size_t>(oi_b) * out_w,
                             static_cast<std::size_t>(out_h - oi_b) *
                                 out_w);
                    if (oj_hi <= oj_lo) {
                        zero_run(base + static_cast<std::size_t>(oi_a) *
                                            out_w,
                                 static_cast<std::size_t>(oi_b - oi_a) *
                                     out_w);
                        continue;
                    }
                    __mmask16 pm[2];
                    pm[0] = out_w == 8
                                ? static_cast<__mmask16>(
                                      load_mask[0] |
                                      static_cast<unsigned>(load_mask[0])
                                          << 8)
                                : load_mask[0];
                    pm[1] = out_w == 32 ? load_mask[1] : pm[0];
                    const float *src =
                        chan +
                        static_cast<std::ptrdiff_t>(oi_a + ki - g.pad) *
                            g.w +
                        (kj - g.pad);
                    float *dst = base + static_cast<std::size_t>(oi_a) *
                                            out_w;
                    const std::size_t nflat =
                        static_cast<std::size_t>(oi_b - oi_a) * out_w;
                    std::size_t p = 0;
                    // vblint: assoc-ok(integer chunk offset, not a float reduction)
                    for (; p + 16 <= nflat; p += 16)
                        _mm512_storeu_ps(
                            dst + p, _mm512_maskz_loadu_ps(
                                         pm[(p >> 4) & 1], src + p));
                    if (p < nflat) {
                        const __mmask16 tail = static_cast<__mmask16>(
                            (1u << (nflat - p)) - 1u);
                        _mm512_mask_storeu_ps(
                            dst + p, tail,
                            _mm512_maskz_loadu_ps(
                                static_cast<__mmask16>(pm[(p >> 4) & 1] &
                                                       tail),
                                src + p));
                    }
                    continue;
                }
                for (int oi = 0; oi < out_h; ++oi) {
                    float *dst = base + static_cast<std::size_t>(oi) *
                                            static_cast<std::size_t>(out_w);
                    const int ii = oi + ki - g.pad;
                    if (ii < 0 || ii >= g.h) {
                        for (int s = 0; s < nseg; ++s)
                            _mm512_mask_storeu_ps(dst + 16 * s,
                                                  store_mask[s], zero);
                        continue;
                    }
                    const float *src_row =
                        chan + static_cast<std::size_t>(ii) *
                                   static_cast<std::size_t>(g.w);
                    for (int s = 0; s < nseg; ++s) {
                        // Interior segments (the bulk for k >= 3) are
                        // straight 16-float copies; only edge segments
                        // pay the expand-load. The branch is on a
                        // hoisted mask, so it predicts perfectly.
                        if (load_mask[s] == 0xffffu) {
                            _mm512_storeu_ps(
                                dst + 16 * s,
                                _mm512_loadu_ps(src_row + src_off[s]));
                            continue;
                        }
                        const __m512 v = _mm512_maskz_expandloadu_ps(
                            load_mask[s], src_row + src_off[s]);
                        _mm512_mask_storeu_ps(dst + 16 * s, store_mask[s],
                                              v);
                    }
                }
            }
        }
    }
}

void
gemmAvx512(const float *a, const float *b, float *c, int m, int k, int n,
           bool accumulate)
{
    if (!accumulate) {
        std::memset(c, 0,
                    sizeof(float) * static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(n));
    }
    // Cache blocking as in gemmAvx2: B column panels stay resident
    // while a K block streams through; C tiles re-load their partial
    // sums so each element still sums in globally ascending k.
    constexpr int kNC = 512;
    constexpr int kKC = 256;
    // Per-thread packing scratch: the Monte-Carlo pool calls gemm from
    // many workers at once, and packed bytes are plain copies so the
    // buffer never influences results.
    thread_local std::vector<float> bpack; // vblint: allow(VB004, per-thread packing scratch; packed bytes are plain copies, never result state)
    for (int j0 = 0; j0 < n; j0 += kNC) {
        const int nb = std::min(kNC, n - j0);
        for (int k0 = 0; k0 < k; k0 += kKC) {
            const int kb = std::min(kKC, k - k0);
            const float *bblk = b + static_cast<std::size_t>(k0) * n + j0;
            // Packing pays for itself once two or more row blocks
            // reuse the panel AND the unpacked row stride is large
            // enough (half a page or more) to pressure the DTLB;
            // small-n panels are L2-resident and read fine unpacked.
            const int tiles = (m >= 16 && n >= 512) ? nb / 32 : 0;
            if (tiles > 0) {
                bpack.resize(static_cast<std::size_t>(tiles) * kb * 32);
                packB(bblk, kb, n, tiles, bpack.data());
            }
            for (int i0 = 0; i0 < m; i0 += 8) {
                const int rows = std::min(8, m - i0);
                const float *ablk =
                    a + static_cast<std::size_t>(i0) * k + k0;
                float *cblk = c + static_cast<std::size_t>(i0) * n + j0;
                int j = 0;
                if (rows == 8) {
                    for (; j + 32 <= nb; j += 32) {
                        if ((j >> 5) < tiles)
                            micro8x32(ablk, k,
                                      bpack.data() +
                                          static_cast<std::size_t>(j >> 5) *
                                              kb * 32,
                                      cblk + j, n, kb, 32);
                        else
                            micro8x32(ablk, k, bblk + j, cblk + j, n, kb,
                                      n);
                    }
                }
                for (; j < nb; j += 16) {
                    const int cols = std::min(16, nb - j);
                    const __mmask16 mask =
                        static_cast<__mmask16>((1u << cols) - 1u);
                    microMasked(ablk, k, rows, bblk + j, cblk + j, n, kb,
                                n, mask);
                }
            }
        }
    }
}

} // namespace vboost::dnn::detail

#else // !VBOOST_HAVE_AVX512

#include "common/logging.hpp"

namespace vboost::dnn::detail {

bool
avx512GemmAvailable()
{
    return false;
}

void
gemmAvx512(const float *, const float *, float *, int, int, int, bool)
{
    fatal("gemmAvx512: called in a build without AVX-512 support");
}

void
im2colAvx512(const float *, const ConvGeom &, std::vector<float> &)
{
    fatal("im2colAvx512: called in a build without AVX-512 support");
}

} // namespace vboost::dnn::detail

#endif // VBOOST_HAVE_AVX512
