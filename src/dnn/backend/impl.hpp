/**
 * @file
 * Internal wiring between the backend registry (backend.cpp) and the
 * concrete implementations (reference.cpp, vectorized.cpp). Not part
 * of the public backend API.
 */

#ifndef VBOOST_DNN_BACKEND_IMPL_HPP
#define VBOOST_DNN_BACKEND_IMPL_HPP

#include "dnn/backend/backend.hpp"

namespace vboost::dnn::detail {

/** The AVX2 backend instance, or nullptr when this build or this CPU
 *  lacks AVX2 support. */
const Backend *vectorizedBackendIfAvailable();

/** True when this build and this CPU support the AVX-512 GEMM path
 *  (vectorized512.cpp). */
bool avx512GemmAvailable();

/**
 * AVX-512 GEMM with the same bitwise contract as every other backend
 * kernel: per-element accumulation in ascending-k order, separate
 * multiply and add (no FMA), masked tails touching exact element
 * subsets. Only call when avx512GemmAvailable().
 */
void gemmAvx512(const float *a, const float *b, float *c, int m, int k,
                int n, bool accumulate);

/**
 * AVX-512 im2col producing byte-identical `cols` to the scalar
 * expansion (copies and +0.0 padding only — no arithmetic). Requires
 * avx512GemmAvailable() and g.outW() <= 128 (the per-row segment-mask
 * cache is fixed-size); callers fall back to the AVX2 path otherwise.
 */
void im2colAvx512(const float *image, const ConvGeom &g,
                  std::vector<float> &cols);

} // namespace vboost::dnn::detail

#endif // VBOOST_DNN_BACKEND_IMPL_HPP
