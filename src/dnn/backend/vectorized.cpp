/**
 * @file
 * The AVX2 "vectorized" backend (DESIGN.md §12). Bitwise-identical to
 * the reference backend on finite inputs by construction:
 *
 *  - GEMM keeps the reference's per-element accumulation order
 *    (ascending k, one product added at a time). SIMD runs 8/16
 *    output columns in parallel, which reorders nothing within any
 *    single element's chain. Multiplies and adds stay separate
 *    instructions (no FMA — fused rounding differs); the TU is built
 *    with -ffp-contract=off as a backstop.
 *  - The reference's zero-skip (`if (aik == 0) continue`) is dropped
 *    rather than emulated: adding the skipped +/-0.0 products is an
 *    identity on every accumulator chain seeded from +0.0, because
 *    round-to-nearest never yields -0.0 from a +0.0 start.
 *  - im2col is pure element copies (memcpy + zero fill), so any
 *    implementation is bitwise-identical.
 *  - MaxPool/ReLU use MAXPS, which returns its second operand on ties
 *    and on NaN — exactly the reference's strict `>` comparisons; the
 *    pool's in-order max tournament picks the same earliest-maximal
 *    element (only observable for -0.0 vs +0.0 ties).
 *  - Fault application precomputes bit-packed fault masks
 *    (sram::PackedFaultMap, same counter-based hash, exact integer
 *    arithmetic) and consumes RNG once per faulty cell in ascending
 *    visit order — the exact draw sequence of the scalar loop.
 *  - Dequantize multiplies by the exact power-of-two resolution
 *    2^-frac instead of dividing by 2^frac: both are exact (no int16
 *    word decodes to a subnormal), hence bitwise-equal.
 *
 * This translation unit is the only dnn code compiled with -mavx2;
 * the registry only exposes the backend after a runtime CPU check.
 */

#include "dnn/backend/impl.hpp"

#if defined(VBOOST_HAVE_AVX2)

#include <bit>
#include <cstring>
#include <immintrin.h>

#include "sram/cell_hash.hpp"
#include "sram/packed_fault_map.hpp"

namespace vboost::dnn {

namespace {

// ------------------------------------------------------------- GEMM

/**
 * Micro-kernel: one row of C over a 16-column strip, accumulating
 * A[i, k0:k0+kb) * B in ascending-k order. C is loaded, accumulated
 * in registers and stored back, so K blocking preserves each
 * element's left-to-right addition chain.
 */
inline void
micro1x16(const float *arow, const float *b, float *crow, int kb, int n)
{
    __m256 acc0 = _mm256_loadu_ps(crow);
    __m256 acc1 = _mm256_loadu_ps(crow + 8);
    const float *bp = b;
    for (int kk = 0; kk < kb; ++kk, bp += n) {
        const __m256 av = _mm256_set1_ps(arow[kk]);
        acc0 = _mm256_add_ps(acc0,
                             _mm256_mul_ps(av, _mm256_loadu_ps(bp)));
        acc1 = _mm256_add_ps(acc1,
                             _mm256_mul_ps(av, _mm256_loadu_ps(bp + 8)));
    }
    _mm256_storeu_ps(crow, acc0);
    _mm256_storeu_ps(crow + 8, acc1);
}

/** As micro1x16 for an 8-column strip. */
inline void
micro1x8(const float *arow, const float *b, float *crow, int kb, int n)
{
    __m256 acc = _mm256_loadu_ps(crow);
    const float *bp = b;
    for (int kk = 0; kk < kb; ++kk, bp += n)
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_set1_ps(arow[kk]),
                               _mm256_loadu_ps(bp)));
    _mm256_storeu_ps(crow, acc);
}

/**
 * 4x16 register-tiled micro-kernel: four C rows x two ymm columns,
 * eight resident accumulators. Same per-element chain as micro1x16.
 */
inline void
micro4x16(const float *a0, const float *a1, const float *a2,
          const float *a3, const float *b, float *c0, float *c1,
          float *c2, float *c3, int kb, int n)
{
    __m256 r00 = _mm256_loadu_ps(c0), r01 = _mm256_loadu_ps(c0 + 8);
    __m256 r10 = _mm256_loadu_ps(c1), r11 = _mm256_loadu_ps(c1 + 8);
    __m256 r20 = _mm256_loadu_ps(c2), r21 = _mm256_loadu_ps(c2 + 8);
    __m256 r30 = _mm256_loadu_ps(c3), r31 = _mm256_loadu_ps(c3 + 8);
    const float *bp = b;
    for (int kk = 0; kk < kb; ++kk, bp += n) {
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(a0[kk]);
        r00 = _mm256_add_ps(r00, _mm256_mul_ps(av, b0));
        r01 = _mm256_add_ps(r01, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a1[kk]);
        r10 = _mm256_add_ps(r10, _mm256_mul_ps(av, b0));
        r11 = _mm256_add_ps(r11, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a2[kk]);
        r20 = _mm256_add_ps(r20, _mm256_mul_ps(av, b0));
        r21 = _mm256_add_ps(r21, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a3[kk]);
        r30 = _mm256_add_ps(r30, _mm256_mul_ps(av, b0));
        r31 = _mm256_add_ps(r31, _mm256_mul_ps(av, b1));
    }
    _mm256_storeu_ps(c0, r00);
    _mm256_storeu_ps(c0 + 8, r01);
    _mm256_storeu_ps(c1, r10);
    _mm256_storeu_ps(c1 + 8, r11);
    _mm256_storeu_ps(c2, r20);
    _mm256_storeu_ps(c2 + 8, r21);
    _mm256_storeu_ps(c3, r30);
    _mm256_storeu_ps(c3 + 8, r31);
}

/** Scalar column tail, ascending k like every other path. */
inline void
microScalar(const float *arow, const float *b, float *crow, int kb,
            int jb, int n)
{
    for (int j = 0; j < jb; ++j) {
        float cv = crow[j];
        const float *bp = b + j;
        // vblint: assoc-ok(pointer stride advance, not a float reduction)
        for (int kk = 0; kk < kb; ++kk, bp += n)
            cv += arow[kk] * *bp; // vblint: assoc-ok(ascending-k chain pinned by the backend bitwise contract, §12)
        crow[j] = cv;
    }
}

void gemmAvx2(const float *a, const float *b, float *c, int m, int k,
              int n, bool accumulate);

/** Widest bitwise-safe GEMM this CPU offers: the AVX-512 kernels when
 *  available (two 512-bit FP ports double the no-FMA mul+add
 *  throughput), the AVX2 kernels otherwise. Both keep the exact
 *  per-element ascending-k chain, so dispatch never changes bits. */
inline void
gemmDispatch(const float *a, const float *b, float *c, int m, int k, int n,
             bool accumulate)
{
    static const bool use512 = detail::avx512GemmAvailable();
    if (use512) {
        detail::gemmAvx512(a, b, c, m, k, n, accumulate);
        return;
    }
    gemmAvx2(a, b, c, m, k, n, accumulate);
}

void im2colAvx2(const float *image, const ConvGeom &g,
                std::vector<float> &cols);

/** im2col is pure data movement, so dispatch is free to pick the
 *  fastest expansion: the AVX-512 expand-load path (one load + one
 *  store per 16-output segment) when the CPU has it and the row fits
 *  its segment cache, the AVX2 copies otherwise. */
inline void
im2colDispatch(const float *image, const ConvGeom &g,
               std::vector<float> &cols)
{
    static const bool use512 = detail::avx512GemmAvailable();
    if (use512 && g.outW() <= 128) {
        detail::im2colAvx512(image, g, cols);
        return;
    }
    im2colAvx2(image, g, cols);
}

void
gemmAvx2(const float *a, const float *b, float *c, int m, int k, int n,
         bool accumulate)
{
    if (!accumulate) {
        std::memset(c, 0,
                    sizeof(float) * static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(n));
    }
    // Cache blocking: column panels of B stay resident while a K
    // block streams through; C tiles re-load their partial sums, so
    // each element still sums products in globally ascending k.
    constexpr int kNC = 256;
    constexpr int kKC = 160;
    for (int j0 = 0; j0 < n; j0 += kNC) {
        const int nb = std::min(kNC, n - j0);
        for (int k0 = 0; k0 < k; k0 += kKC) {
            const int kb = std::min(kKC, k - k0);
            const float *bblk =
                b + static_cast<std::size_t>(k0) * n + j0;
            int i = 0;
            for (; i + 4 <= m; i += 4) {
                const float *a0 = a + static_cast<std::size_t>(i) * k + k0;
                const float *a1 = a0 + k;
                const float *a2 = a1 + k;
                const float *a3 = a2 + k;
                float *c0 = c + static_cast<std::size_t>(i) * n + j0;
                float *c1 = c0 + n;
                float *c2 = c1 + n;
                float *c3 = c2 + n;
                int j = 0;
                for (; j + 16 <= nb; j += 16)
                    micro4x16(a0, a1, a2, a3, bblk + j, c0 + j, c1 + j,
                              c2 + j, c3 + j, kb, n);
                for (int r = 0; r < 4; ++r) {
                    const float *ar = a0 + static_cast<std::size_t>(r) * k;
                    float *cr = c0 + static_cast<std::size_t>(r) * n;
                    int jj = j;
                    for (; jj + 8 <= nb; jj += 8)
                        micro1x8(ar, bblk + jj, cr + jj, kb, n);
                    if (jj < nb)
                        microScalar(ar, bblk + jj, cr + jj, kb, nb - jj,
                                    n);
                }
            }
            for (; i < m; ++i) {
                const float *ar = a + static_cast<std::size_t>(i) * k + k0;
                float *cr = c + static_cast<std::size_t>(i) * n + j0;
                int j = 0;
                for (; j + 16 <= nb; j += 16)
                    micro1x16(ar, bblk + j, cr + j, kb, n);
                for (; j + 8 <= nb; j += 8)
                    micro1x8(ar, bblk + j, cr + j, kb, n);
                if (j < nb)
                    microScalar(ar, bblk + j, cr + j, kb, nb - j, n);
            }
        }
    }
}

// ---------------------------------------------------------- im2col

/** Inline copy/zero for the short runs im2col produces (the 3x3 conv
 *  layers copy 8-16 floats per row, where memcpy's dispatch overhead
 *  dominates). Plain element moves — bitwise-neutral. */
inline void
copyFloats(float *dst, const float *src, int len)
{
    int i = 0;
    for (; i + 8 <= len; i += 8)
        _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
    for (; i < len; ++i)
        dst[i] = src[i];
}

inline void
zeroFloats(float *dst, int len)
{
    const __m256 z = _mm256_setzero_ps();
    int i = 0;
    for (; i + 8 <= len; i += 8)
        _mm256_storeu_ps(dst + i, z);
    for (; i < len; ++i)
        dst[i] = 0.0f;
}

/** im2col as row-segment copies: for each (channel, ki, kj) the valid
 *  output columns map to one contiguous input run per output row. */
void
im2colAvx2(const float *image, const ConvGeom &g, std::vector<float> &cols)
{
    const int out_h = g.outH();
    const int out_w = g.outW();
    const std::size_t spatial = g.spatial();
    cols.resize(static_cast<std::size_t>(g.patch()) * spatial);
    std::size_t row = 0;
    for (int c = 0; c < g.inCh; ++c) {
        const float *chan = image + static_cast<std::size_t>(c) *
                                        static_cast<std::size_t>(g.h) *
                                        static_cast<std::size_t>(g.w);
        for (int ki = 0; ki < g.kernel; ++ki) {
            for (int kj = 0; kj < g.kernel; ++kj, ++row) {
                float *dst = cols.data() + row * spatial;
                // Valid output columns: 0 <= oj + kj - pad < w.
                const int oj_lo = std::max(0, g.pad - kj);
                const int oj_hi = std::min(out_w, g.w + g.pad - kj);
                // vblint: assoc-ok(pointer stride advance, not a float reduction)
                for (int oi = 0; oi < out_h; ++oi, dst += out_w) {
                    const int ii = oi + ki - g.pad;
                    if (ii < 0 || ii >= g.h || oj_lo >= oj_hi) {
                        zeroFloats(dst, out_w);
                        continue;
                    }
                    if (oj_lo > 0)
                        zeroFloats(dst, oj_lo);
                    copyFloats(dst + oj_lo,
                               chan + static_cast<std::size_t>(ii) *
                                          static_cast<std::size_t>(g.w) +
                                   static_cast<std::size_t>(oj_lo + kj -
                                                            g.pad),
                               oj_hi - oj_lo);
                    if (oj_hi < out_w)
                        zeroFloats(dst + oj_hi, out_w - oj_hi);
                }
            }
        }
    }
}

// ------------------------------------------------------------- pool

/** De-interleave two 8-float loads into even and odd columns:
 *  evens = [a0,a2,a4,a6,b0,b2,b4,b6], odds likewise. */
inline __m256
deinterleave(__m256 a, __m256 b, int which)
{
    const __m256 mixed =
        which == 0 ? _mm256_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0))
                   : _mm256_shuffle_ps(a, b, _MM_SHUFFLE(3, 1, 3, 1));
    return _mm256_castpd_ps(
        _mm256_permute4x64_pd(_mm256_castps_pd(mixed), 0xD8));
}

/**
 * 2x2/stride-2 max pool. MAXPS(a, b) returns b unless a > b, i.e. ties
 * resolve to the second operand — so pairing later elements as the
 * first operand makes every max an exact match for the reference's
 * `v > best` comparisons. The pairing ((e0,e1),(e2,e3)) is an in-order
 * tournament over the reference's (di, dj) visit sequence, which
 * selects the same earliest-maximal element (only observable for
 * -0.0 vs +0.0 ties).
 */
void
maxPool2x2Avx2(const float *x, float *y, int batch, int c, int h, int w)
{
    const int oh = h / 2, ow = w / 2;
    std::size_t oidx = 0;
    for (int n = 0; n < batch; ++n) {
        for (int ch = 0; ch < c; ++ch) {
            const float *plane = x + (static_cast<std::size_t>(n) * c + ch) *
                                         static_cast<std::size_t>(h) * w;
            for (int i = 0; i < oh; ++i) {
                const float *r0 =
                    plane + static_cast<std::size_t>(2 * i) * w;
                const float *r1 = r0 + w;
                int j = 0;
                for (; j + 8 <= ow; j += 8, oidx += 8) {
                    const __m256 a0 = _mm256_loadu_ps(r0 + 2 * j);
                    const __m256 b0 = _mm256_loadu_ps(r0 + 2 * j + 8);
                    const __m256 a1 = _mm256_loadu_ps(r1 + 2 * j);
                    const __m256 b1 = _mm256_loadu_ps(r1 + 2 * j + 8);
                    const __m256 m0 = _mm256_max_ps(
                        deinterleave(a0, b0, 1), deinterleave(a0, b0, 0));
                    const __m256 m1 = _mm256_max_ps(
                        deinterleave(a1, b1, 1), deinterleave(a1, b1, 0));
                    _mm256_storeu_ps(y + oidx, _mm256_max_ps(m1, m0));
                }
                for (; j < ow; ++j, ++oidx) {
                    float best = r0[2 * j];
                    if (r0[2 * j + 1] > best)
                        best = r0[2 * j + 1];
                    if (r1[2 * j] > best)
                        best = r1[2 * j];
                    if (r1[2 * j + 1] > best)
                        best = r1[2 * j + 1];
                    y[oidx] = best;
                }
            }
        }
    }
}

// ----------------------------------------------------------- faults

/** Iterate the faulty bits of one <=64-bit mask in ascending order,
 *  drawing one bernoulli per faulty cell — the scalar loop's exact
 *  RNG consumption — and flip accepted bits. */
inline std::uint64_t
flipMaskedBits(std::uint64_t &bits, std::uint64_t fault_mask,
               double flip_prob, Rng &rng)
{
    std::uint64_t flipped = 0;
    while (fault_mask != 0) {
        const int b = std::countr_zero(fault_mask);
        fault_mask &= fault_mask - 1;
        if (rng.bernoulli(flip_prob)) {
            bits ^= 1ull << b;
            ++flipped;
        }
    }
    return flipped;
}

std::uint64_t
applyFaultMapPacked(std::span<std::int16_t> words,
                    const sram::VulnerabilityMap &map,
                    const FaultWindow &win, sram::FaultParams params,
                    Rng &rng)
{
    if (params.failProb <= 0.0 || params.flipProb <= 0.0)
        return 0;
    const sram::PackedFaultMap packed(map, win.regionBase, win.regionBits,
                                      win.startBit, words.size() * 16ull,
                                      params.failProb);
    std::uint64_t flipped = 0;
    std::size_t w = 0;
    // Four 16-bit words per packed 64-bit mask; one compare skips all
    // four when the window is fault-free there (the common case).
    for (; w + 4 <= words.size(); w += 4) {
        std::uint64_t m = packed.words()[w >> 2];
        if (m == 0)
            continue;
        for (std::size_t q = 0; q < 4; ++q, m >>= 16) {
            const std::uint64_t m16 = m & 0xffffull;
            if (m16 == 0)
                continue;
            std::uint64_t bits =
                static_cast<std::uint16_t>(words[w + q]);
            flipped += flipMaskedBits(bits, m16, params.flipProb, rng);
            words[w + q] =
                static_cast<std::int16_t>(static_cast<std::uint16_t>(bits));
        }
    }
    for (; w < words.size(); ++w) {
        const std::uint64_t m16 = packed.mask(w * 16, 16);
        if (m16 == 0)
            continue;
        std::uint64_t bits = static_cast<std::uint16_t>(words[w]);
        flipped += flipMaskedBits(bits, m16, params.flipProb, rng);
        words[w] =
            static_cast<std::int16_t>(static_cast<std::uint16_t>(bits));
    }
    return flipped;
}

class VectorizedBackend final : public Backend
{
  public:
    std::string_view name() const override { return "vectorized"; }

    void
    gemm(const float *a, const float *b, float *c, int m, int k, int n,
         bool accumulate) const override
    {
        gemmDispatch(a, b, c, m, k, n, accumulate);
    }

    void
    im2col(const float *image, const ConvGeom &g,
           std::vector<float> &cols) const override
    {
        im2colDispatch(image, g, cols);
    }

    void
    im2colConv(const float *image, const float *weights, const float *bias,
               float *out, const ConvGeom &g,
               std::vector<float> &cols) const override
    {
        const std::size_t spatial = g.spatial();
        im2colDispatch(image, g, cols);
        gemmDispatch(weights, cols.data(), out, g.outCh, g.patch(),
                     static_cast<int>(spatial), /*accumulate=*/false);
        for (int oc = 0; oc < g.outCh; ++oc) {
            float *chan = out + static_cast<std::size_t>(oc) * spatial;
            const __m256 bv = _mm256_set1_ps(bias[oc]);
            std::size_t i = 0;
            for (; i + 8 <= spatial; i += 8)
                _mm256_storeu_ps(
                    chan + i,
                    _mm256_add_ps(_mm256_loadu_ps(chan + i), bv));
            for (; i < spatial; ++i)
                chan[i] += bias[oc]; // vblint: assoc-ok(single bias add per element, no reduction)
        }
    }

    void
    maxPool2x2(const float *x, float *y, int batch, int c, int h,
               int w) const override
    {
        maxPool2x2Avx2(x, y, batch, c, h, w);
    }

    void
    relu(const float *x, float *y, std::size_t n) const override
    {
        // MAXPS(x, +0.0) is exactly `x > 0 ? x : +0.0f`: it returns the
        // second operand on ties (-0.0) and unordered (NaN) inputs.
        const __m256 zero = _mm256_setzero_ps();
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8)
            _mm256_storeu_ps(y + i,
                             _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
        for (; i < n; ++i)
            y[i] = x[i] > 0.0f ? x[i] : 0.0f;
    }

    std::uint64_t
    applyFaultMap(std::span<std::int16_t> words,
                  const sram::VulnerabilityMap &map, const FaultWindow &win,
                  sram::FaultParams params, Rng &rng) const override
    {
        return applyFaultMapPacked(words, map, win, params, rng);
    }

    std::uint64_t
    applyFaultMapDequant(std::span<std::int16_t> words,
                         const FixedPointCodec &codec, float *out,
                         const sram::VulnerabilityMap &map,
                         const FaultWindow &win, sram::FaultParams params,
                         Rng &rng) const override
    {
        const std::uint64_t flipped =
            applyFaultMapPacked(words, map, win, params, rng);
        // decode(raw) = float(raw) / 2^frac = float(raw) * 2^-frac,
        // exact either way for the int16 range (see file header).
        const __m256 scale = _mm256_set1_ps(codec.resolution());
        std::size_t i = 0;
        for (; i + 8 <= words.size(); i += 8) {
            const __m128i raw = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(words.data() + i));
            const __m256 vals =
                _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(raw));
            _mm256_storeu_ps(out + i, _mm256_mul_ps(vals, scale));
        }
        for (; i < words.size(); ++i)
            out[i] = codec.decode(words[i]);
        return flipped;
    }

    std::uint64_t
    applyFaultMapBits(std::uint64_t &bits, int nbits,
                      const sram::VulnerabilityMap &map,
                      const FaultWindow &win, sram::FaultParams params,
                      Rng &rng) const override
    {
        if (params.failProb <= 0.0)
            return 0;
        // Build the <=64-bit fault mask in place (no per-group heap
        // allocation): the ECC staging loop calls this once per
        // 64-bit data group and once per 8-bit check group.
        const std::uint64_t offset = win.startBit % win.regionBits;
        std::uint64_t mask;
        if (static_cast<std::uint64_t>(nbits) == 64 &&
            offset + 64 <= win.regionBits &&
            map.model() == sram::MapModel::Iid &&
            sram::PackedFaultMap::simdPackingActive()) {
            mask = sram::packMask64Avx2(
                map.streamKey(), sram::detail::probThreshold(
                                     params.failProb),
                win.regionBase + offset);
        } else {
            mask = 0;
            for (int b = 0; b < nbits; ++b) {
                const std::uint64_t cell =
                    win.regionBase +
                    (win.startBit + static_cast<std::uint64_t>(b)) %
                        win.regionBits;
                if (map.isFaulty(cell, params.failProb))
                    mask |= 1ull << b;
            }
        }
        return flipMaskedBits(bits, mask, params.flipProb, rng);
    }
};

} // namespace

namespace detail {

const Backend *
vectorizedBackendIfAvailable()
{
    static const bool supported = __builtin_cpu_supports("avx2");
    if (!supported)
        return nullptr;
    static const VectorizedBackend kVectorized;
    return &kVectorized;
}

} // namespace detail

} // namespace vboost::dnn

#else // !VBOOST_HAVE_AVX2

namespace vboost::dnn::detail {

const Backend *
vectorizedBackendIfAvailable()
{
    return nullptr;
}

} // namespace vboost::dnn::detail

#endif // VBOOST_HAVE_AVX2
