#include "dnn/backend/backend.hpp"

#include <atomic>

#include "dnn/backend/impl.hpp"

namespace vboost::dnn {

std::vector<std::string_view>
availableBackends()
{
    std::vector<std::string_view> names{referenceBackend().name()};
    if (const Backend *v = detail::vectorizedBackendIfAvailable())
        names.push_back(v->name());
    return names;
}

const Backend *
findBackend(std::string_view name)
{
    if (name == "auto") {
        // Fastest available: the vectorized backend is bitwise-equal
        // to the reference, so preferring it never changes results.
        if (const Backend *v = detail::vectorizedBackendIfAvailable())
            return v;
        return &referenceBackend();
    }
    if (name == "reference")
        return &referenceBackend();
    if (name == "vectorized")
        return detail::vectorizedBackendIfAvailable();
    return nullptr;
}

namespace {

std::atomic<const Backend *> &
activeSlot()
{
    // Process-wide backend selection. Mutable global state is accepted
    // here under the set-before-threads contract: selection happens at
    // startup (flag parsing) before any worker pool exists, and every
    // backend is bitwise-identical anyway, so even a mid-run swap
    // could not change results — only speed.
    static std::atomic<const Backend *> slot{findBackend("auto")};
    return slot;
}

} // namespace

const Backend &
activeBackend()
{
    return *activeSlot().load(std::memory_order_acquire);
}

bool
setActiveBackend(std::string_view name)
{
    const Backend *b = findBackend(name);
    if (b == nullptr)
        return false;
    activeSlot().store(b, std::memory_order_release);
    return true;
}

} // namespace vboost::dnn
