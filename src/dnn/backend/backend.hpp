/**
 * @file
 * Swappable compute backends (DESIGN.md §12). A Backend owns the hot
 * kernels of the repro — forward GEMM, the im2col convolution and the
 * fault-map application / fused corrupt-and-dequantize kernels the
 * fault-injection staging loop runs — so scalar reference code and
 * SIMD implementations can be exchanged freely.
 *
 * Contract: every backend is BITWISE-IDENTICAL to the reference
 * backend on finite inputs, at every thread count, including the
 * per-faulty-cell RNG consumption order of the fault kernels. This is
 * the §7 determinism bar: swapping backends may change speed, never a
 * single output bit. tests/test_backend.cpp (ctest `backend_equivalence`)
 * enforces it.
 *
 * Backends are stateless and const; all methods are safe to call from
 * many threads concurrently. The process-wide active backend must be
 * selected before worker threads start (set-before-threads contract).
 */

#ifndef VBOOST_DNN_BACKEND_BACKEND_HPP
#define VBOOST_DNN_BACKEND_BACKEND_HPP

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "sram/fault_map.hpp"

namespace vboost::dnn {

/** Geometry of one stride-1, symmetric-pad 2-D convolution. */
struct ConvGeom
{
    int inCh = 0;   ///< input channels
    int outCh = 0;  ///< output channels
    int kernel = 0; ///< square kernel size
    int pad = 0;    ///< symmetric zero padding
    int h = 0;      ///< input height
    int w = 0;      ///< input width

    int outH() const { return h + 2 * pad - kernel + 1; }
    int outW() const { return w + 2 * pad - kernel + 1; }
    /** Patch length inCh*k*k (the GEMM K dimension). */
    int patch() const { return inCh * kernel * kernel; }
    /** Output spatial size (the GEMM N dimension). */
    std::size_t spatial() const
    {
        return static_cast<std::size_t>(outH()) *
               static_cast<std::size_t>(outW());
    }
};

/**
 * Wrapped-region fault window: which SRAM cells a staged buffer's bits
 * visit. Visit j touches cell regionBase + (startBit + j) mod
 * regionBits, matching fi's staging walk.
 */
struct FaultWindow
{
    std::uint64_t regionBase = 0;
    std::uint64_t regionBits = 0;
    std::uint64_t startBit = 0;
};

class Backend
{
  public:
    virtual ~Backend() = default;

    /** Registry name ("reference", "vectorized"). */
    virtual std::string_view name() const = 0;

    /** C[m,n] (+)= A[m,k] B[k,n], row-major. Per-element accumulation
     *  is in ascending-k order in every backend (bitwise contract). */
    virtual void gemm(const float *a, const float *b, float *c, int m,
                      int k, int n, bool accumulate) const = 0;

    /**
     * One-image convolution: expand `image` ([inCh, h, w]) into
     * `cols` ([patch, spatial]) and compute
     * out = W cols + bias, out [outCh, spatial].
     * `cols` is caller-owned scratch resized as needed (so per-thread
     * buffers can be reused across images).
     */
    virtual void im2colConv(const float *image, const float *weights,
                            const float *bias, float *out,
                            const ConvGeom &g,
                            std::vector<float> &cols) const = 0;

    /** im2col alone (shared by Conv2d::backward's col2im pairing). */
    virtual void im2col(const float *image, const ConvGeom &g,
                        std::vector<float> &cols) const = 0;

    /**
     * 2x2 stride-2 max pooling over NCHW activations (inference path;
     * the training path keeps the layer's argmax bookkeeping). Ties —
     * which only matter bitwise for -0.0 vs +0.0 — resolve to the
     * earliest element in (di, dj) scan order, exactly like the
     * reference `v > best` fold.
     */
    virtual void maxPool2x2(const float *x, float *y, int batch, int c,
                            int h, int w) const = 0;

    /** Elementwise y[i] = x[i] > 0 ? x[i] : +0.0f (so -0.0 and NaN
     *  inputs both map to +0.0). In-place (y == x) is allowed. */
    virtual void relu(const float *x, float *y, std::size_t n) const = 0;

    /**
     * Corrupt staged 16-bit words through a fault window: bit b of
     * word w is visit 16*w + b; each faulty visited cell flips with
     * params.flipProb. RNG is consumed exactly once per faulty visited
     * cell, in visit order (bitwise contract with the reference
     * scalar loop). @return bits flipped.
     */
    virtual std::uint64_t applyFaultMap(std::span<std::int16_t> words,
                                        const sram::VulnerabilityMap &map,
                                        const FaultWindow &win,
                                        sram::FaultParams params,
                                        Rng &rng) const = 0;

    /**
     * The fused fault-injection kernel: corrupt `words` in place as
     * applyFaultMap, then dequantize every (possibly corrupted) word
     * through `codec` into `out` (words.size() floats). With
     * params.failProb == 0 this is a pure vectorizable decode — the
     * round-trip path untargeted layers take. @return bits flipped.
     */
    virtual std::uint64_t
    applyFaultMapDequant(std::span<std::int16_t> words,
                         const FixedPointCodec &codec, float *out,
                         const sram::VulnerabilityMap &map,
                         const FaultWindow &win, sram::FaultParams params,
                         Rng &rng) const = 0;

    /**
     * Corrupt the low `nbits` (1..64) of one staged word — the ECC
     * path's data/check groups, whose RNG draws interleave across two
     * windows. Visit j of this call is window visit startBit + j.
     * @return bits flipped.
     */
    virtual std::uint64_t applyFaultMapBits(std::uint64_t &bits, int nbits,
                                            const sram::VulnerabilityMap &map,
                                            const FaultWindow &win,
                                            sram::FaultParams params,
                                            Rng &rng) const = 0;
};

/** The scalar reference backend (always available). */
const Backend &referenceBackend();

/** Backend names in registry order, available ones only. */
std::vector<std::string_view> availableBackends();

/** Look up a backend by name; nullptr when unknown or unavailable on
 *  this machine (e.g. "vectorized" without AVX2). "auto" resolves to
 *  the fastest available backend. */
const Backend *findBackend(std::string_view name);

/**
 * Process-wide active backend, used by Dense/Conv2d forward and the
 * fi staging loop. Defaults to "auto". Set-before-threads: call
 * setActiveBackend() only while single-threaded.
 */
const Backend &activeBackend();

/** Select the active backend; false when the name is unknown or the
 *  backend is unavailable on this machine (active selection kept). */
bool setActiveBackend(std::string_view name);

} // namespace vboost::dnn

#endif // VBOOST_DNN_BACKEND_BACKEND_HPP
