/**
 * @file
 * The scalar reference backend: the repo's original kernels, verbatim.
 * Every other backend is defined as "bitwise-identical to this one on
 * finite inputs" (DESIGN.md §12), so these loops are the semantic
 * ground truth — keep them boring.
 */

#include "dnn/backend/impl.hpp"
#include "dnn/tensor.hpp"

namespace vboost::dnn {

namespace {

class ReferenceBackend final : public Backend
{
  public:
    std::string_view name() const override { return "reference"; }

    void
    gemm(const float *a, const float *b, float *c, int m, int k, int n,
         bool accumulate) const override
    {
        // The free function in tensor.cpp (i-k-j loop with zero-skip).
        vboost::dnn::gemm(a, b, c, m, k, n, accumulate);
    }

    void
    im2col(const float *image, const ConvGeom &g,
           std::vector<float> &cols) const override
    {
        const int out_h = g.outH();
        const int out_w = g.outW();
        const std::size_t spatial = g.spatial();
        cols.resize(static_cast<std::size_t>(g.patch()) * spatial);
        std::size_t row = 0;
        for (int c = 0; c < g.inCh; ++c) {
            const float *chan =
                image + static_cast<std::size_t>(c) *
                            static_cast<std::size_t>(g.h) *
                            static_cast<std::size_t>(g.w);
            for (int ki = 0; ki < g.kernel; ++ki) {
                for (int kj = 0; kj < g.kernel; ++kj, ++row) {
                    float *dst = cols.data() + row * spatial;
                    std::size_t idx = 0;
                    for (int oi = 0; oi < out_h; ++oi) {
                        const int ii = oi + ki - g.pad;
                        for (int oj = 0; oj < out_w; ++oj, ++idx) {
                            const int jj = oj + kj - g.pad;
                            dst[idx] = (ii >= 0 && ii < g.h && jj >= 0 &&
                                        jj < g.w)
                                           ? chan[static_cast<std::size_t>(
                                                      ii) *
                                                      static_cast<
                                                          std::size_t>(
                                                          g.w) +
                                                  static_cast<std::size_t>(
                                                      jj)]
                                           : 0.0f;
                        }
                    }
                }
            }
        }
    }

    void
    im2colConv(const float *image, const float *weights, const float *bias,
               float *out, const ConvGeom &g,
               std::vector<float> &cols) const override
    {
        const std::size_t spatial = g.spatial();
        im2col(image, g, cols);
        vboost::dnn::gemm(weights, cols.data(), out, g.outCh, g.patch(),
                          static_cast<int>(spatial));
        for (int oc = 0; oc < g.outCh; ++oc) {
            float *chan = out + static_cast<std::size_t>(oc) * spatial;
            const float b = bias[static_cast<std::size_t>(oc)];
            for (std::size_t i = 0; i < spatial; ++i)
                chan[i] += b; // vblint: assoc-ok(single bias add per element, no reduction)
        }
    }

    void
    maxPool2x2(const float *x, float *y, int batch, int c, int h,
               int w) const override
    {
        // The layer's original scan: best starts at the (0,0) corner
        // and only a strictly greater value replaces it, so ties keep
        // the earliest element.
        const int oh = h / 2, ow = w / 2;
        std::size_t oidx = 0;
        for (int n = 0; n < batch; ++n) {
            for (int ch = 0; ch < c; ++ch) {
                const float *plane =
                    x + (static_cast<std::size_t>(n) * c + ch) *
                            static_cast<std::size_t>(h) * w;
                for (int i = 0; i < oh; ++i) {
                    const float *r0 = plane + static_cast<std::size_t>(
                                                  2 * i) * w;
                    const float *r1 = r0 + w;
                    for (int j = 0; j < ow; ++j, ++oidx) {
                        float best = r0[2 * j];
                        if (r0[2 * j + 1] > best)
                            best = r0[2 * j + 1];
                        if (r1[2 * j] > best)
                            best = r1[2 * j];
                        if (r1[2 * j + 1] > best)
                            best = r1[2 * j + 1];
                        y[oidx] = best;
                    }
                }
            }
        }
    }

    void
    relu(const float *x, float *y, std::size_t n) const override
    {
        for (std::size_t i = 0; i < n; ++i)
            y[i] = x[i] > 0.0f ? x[i] : 0.0f;
    }

    std::uint64_t
    applyFaultMap(std::span<std::int16_t> words,
                  const sram::VulnerabilityMap &map, const FaultWindow &win,
                  sram::FaultParams params, Rng &rng) const override
    {
        if (params.failProb <= 0.0 || params.flipProb <= 0.0)
            return 0;
        std::uint64_t flipped = 0;
        std::uint64_t bit = win.startBit % win.regionBits;
        for (auto &word : words) {
            auto raw = static_cast<std::uint16_t>(word);
            for (int b = 0; b < 16; ++b) {
                const std::uint64_t cell = win.regionBase + bit;
                if (map.isFaulty(cell, params.failProb) &&
                    rng.bernoulli(params.flipProb)) {
                    raw ^= static_cast<std::uint16_t>(1u << b);
                    ++flipped;
                }
                if (++bit == win.regionBits)
                    bit = 0;
            }
            word = static_cast<std::int16_t>(raw);
        }
        return flipped;
    }

    std::uint64_t
    applyFaultMapDequant(std::span<std::int16_t> words,
                         const FixedPointCodec &codec, float *out,
                         const sram::VulnerabilityMap &map,
                         const FaultWindow &win, sram::FaultParams params,
                         Rng &rng) const override
    {
        const std::uint64_t flipped =
            applyFaultMap(words, map, win, params, rng);
        for (std::size_t i = 0; i < words.size(); ++i)
            out[i] = codec.decode(words[i]);
        return flipped;
    }

    std::uint64_t
    applyFaultMapBits(std::uint64_t &bits, int nbits,
                      const sram::VulnerabilityMap &map,
                      const FaultWindow &win, sram::FaultParams params,
                      Rng &rng) const override
    {
        // No flipProb early-out: the ECC staging loop historically
        // consumed one bernoulli per faulty cell even at flipProb 0,
        // and downstream draws must see an unchanged RNG stream.
        if (params.failProb <= 0.0)
            return 0;
        std::uint64_t flipped = 0;
        for (int b = 0; b < nbits; ++b) {
            const std::uint64_t cell =
                win.regionBase +
                (win.startBit + static_cast<std::uint64_t>(b)) %
                    win.regionBits;
            if (map.isFaulty(cell, params.failProb) &&
                rng.bernoulli(params.flipProb)) {
                bits ^= 1ull << b;
                ++flipped;
            }
        }
        return flipped;
    }
};

} // namespace

const Backend &
referenceBackend()
{
    static const ReferenceBackend kReference;
    return kReference;
}

} // namespace vboost::dnn
