#include "dnn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"

namespace vboost::dnn {

SgdTrainer::SgdTrainer(TrainConfig cfg) : cfg_(cfg)
{
    if (cfg_.epochs < 1 || cfg_.batchSize < 1)
        fatal("SgdTrainer: epochs and batch size must be positive");
    if (cfg_.learningRate <= 0.0)
        fatal("SgdTrainer: learning rate must be positive");
    if (cfg_.momentum < 0.0 || cfg_.momentum >= 1.0)
        fatal("SgdTrainer: momentum must be in [0,1)");
}

std::vector<EpochStats>
SgdTrainer::train(Network &net, const Dataset &train_set, Rng &rng)
{
    if (train_set.size() == 0)
        fatal("SgdTrainer::train: empty training set");

    auto params = net.params();
    std::vector<Tensor> velocity;
    velocity.reserve(params.size());
    for (auto &p : params)
        velocity.push_back(Tensor::zeros(p.value->shape()));

    SoftmaxCrossEntropy loss_fn;
    std::vector<std::size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<EpochStats> stats;
    double lr = cfg_.learningRate;
    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        // Fisher-Yates shuffle with our deterministic generator.
        for (std::size_t i = order.size(); i > 1; --i) {
            const std::size_t j = rng.uniformInt(i);
            std::swap(order[i - 1], order[j]);
        }

        double loss_sum = 0.0;
        std::size_t correct = 0, seen = 0, batches = 0;
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(cfg_.batchSize)) {
            const std::size_t count =
                std::min(static_cast<std::size_t>(cfg_.batchSize),
                         order.size() - start);
            std::vector<std::size_t> idx(order.begin() +
                                             static_cast<long>(start),
                                         order.begin() +
                                             static_cast<long>(start +
                                                               count));
            Dataset batch = train_set.gather(idx);

            net.zeroGrads();
            Tensor logits = batch.images;
            logits = net.forward(logits, /*train=*/true);
            Tensor grad;
            // vblint: assoc-ok(batches processed in fixed epoch order)
            loss_sum += loss_fn.lossAndGrad(logits, batch.labels, grad);
            ++batches;
            net.backward(grad);

            // Track train accuracy from the logits already computed.
            for (int i = 0; i < logits.dim(0); ++i) {
                int best = 0;
                for (int j = 1; j < logits.dim(1); ++j) {
                    if (logits.at(i, j) > logits.at(i, best))
                        best = j;
                }
                correct += best == batch.labels[static_cast<std::size_t>(i)];
                ++seen;
            }

            for (std::size_t p = 0; p < params.size(); ++p) {
                Tensor &v = velocity[p];
                Tensor &value = *params[p].value;
                const Tensor &grad_p = *params[p].grad;
                for (std::size_t e = 0; e < value.numel(); ++e) {
                    v[e] = static_cast<float>(cfg_.momentum * v[e] -
                                              lr * grad_p[e]);
                    // vblint: assoc-ok(one momentum update per element)
                    value[e] += v[e];
                }
            }
        }

        EpochStats es;
        es.meanLoss = loss_sum / static_cast<double>(batches);
        es.trainAccuracy =
            static_cast<double>(correct) / static_cast<double>(seen);
        stats.push_back(es);
        if (cfg_.verbose) {
            inform("epoch ", epoch + 1, "/", cfg_.epochs, ": loss=",
                   es.meanLoss, " train_acc=", es.trainAccuracy);
        }
        lr *= cfg_.lrDecay;
    }
    return stats;
}

double
SgdTrainer::evaluate(Network &net, const Dataset &test_set,
                     std::size_t max_samples)
{
    std::size_t n = test_set.size();
    if (max_samples > 0)
        n = std::min(n, max_samples);
    if (n == 0)
        fatal("SgdTrainer::evaluate: empty test set");

    // Small batches keep the whole interlayer activation chain
    // L2-resident (a conv1 output alone is 64 KB/image), which
    // matters more than amortizing per-layer call overhead; results
    // are bitwise independent of the batch split (each image's
    // forward only reads its own rows).
    constexpr std::size_t kEvalBatch = 8;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < n; start += kEvalBatch) {
        const std::size_t count = std::min(kEvalBatch, n - start);
        Dataset batch = test_set.slice(start, count);
        const auto pred = net.predict(batch.images);
        for (std::size_t i = 0; i < count; ++i)
            correct += pred[i] == batch.labels[i];
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

} // namespace vboost::dnn
