#include "dnn/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace vboost::dnn {

FixedPointCodec
chooseCodec(const Tensor &t)
{
    const float max_abs = t.maxAbs();
    // Smallest number of integer bits whose range covers max_abs; no
    // wasted headroom bits (a flip in an unused top bit would be a
    // disproportionately large perturbation).
    int int_bits = 0;
    float range = 1.0f;
    while (range < max_abs && int_bits < 15) {
        range *= 2.0f;
        ++int_bits;
    }
    return FixedPointCodec(15 - int_bits);
}

QuantizedTensor
quantize(const Tensor &t)
{
    return quantize(t, chooseCodec(t));
}

QuantizedTensor
quantize(const Tensor &t, const FixedPointCodec &codec)
{
    if (t.numel() == 0)
        fatal("quantize: empty tensor");
    QuantizedTensor q{std::vector<std::int16_t>(t.numel()), codec,
                      t.shape()};
    for (std::size_t i = 0; i < t.numel(); ++i)
        q.words[i] = codec.encode(t[i]);
    return q;
}

Tensor
dequantize(const QuantizedTensor &q)
{
    Tensor t(q.shape);
    for (std::size_t i = 0; i < q.words.size(); ++i)
        t[i] = q.codec.decode(q.words[i]);
    return t;
}

Tensor
quantizeRoundTrip(const Tensor &t)
{
    return dequantize(quantize(t));
}

void
clipParameters(Network &net, float limit)
{
    if (limit <= 0.0f)
        fatal("clipParameters: limit must be positive");
    for (auto &p : net.params()) {
        for (std::size_t i = 0; i < p.value->numel(); ++i) {
            float &v = (*p.value)[i];
            v = std::clamp(v, -limit, limit);
        }
    }
}

} // namespace vboost::dnn
