#include "dnn/tensor.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <tuple>

#include "common/logging.hpp"

namespace vboost::dnn {

namespace {

std::size_t
shapeNumel(const std::vector<int> &shape)
{
    std::size_t n = 1;
    for (int d : shape) {
        if (d <= 0)
            fatal("Tensor: dimensions must be positive, got ", d);
        n *= static_cast<std::size_t>(d);
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape))
{
    if (shape_.empty() || shape_.size() > 4)
        fatal("Tensor: rank must be 1..4, got ", shape_.size());
    data_.assign(shapeNumel(shape_), 0.0f);
}

Tensor
Tensor::zeros(std::vector<int> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::uninitialized(std::vector<int> shape)
{
    Tensor t;
    t.shape_ = std::move(shape);
    if (t.shape_.empty() || t.shape_.size() > 4)
        fatal("Tensor: rank must be 1..4, got ", t.shape_.size());
    // resize() default-initializes through NoInitAlloc: no zero-fill.
    t.data_.resize(shapeNumel(t.shape_));
    return t;
}

Tensor
Tensor::randn(std::vector<int> shape, Rng &rng, double stddev)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

int
Tensor::dim(int d) const
{
    if (d < 0 || d >= rank())
        fatal("Tensor::dim: dimension ", d, " out of rank ", rank());
    return shape_[static_cast<std::size_t>(d)];
}

float &
Tensor::at(int i, int j)
{
    return data_[static_cast<std::size_t>(i) *
                     static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(j)];
}

float
Tensor::at(int i, int j) const
{
    return data_[static_cast<std::size_t>(i) *
                     static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(j)];
}

float &
Tensor::at(int n, int c, int h, int w)
{
    const auto [N, C, H, W] =
        std::tuple{shape_[0], shape_[1], shape_[2], shape_[3]};
    (void)N;
    return data_[((static_cast<std::size_t>(n) * C + c) * H + h) * W + w];
}

float
Tensor::at(int n, int c, int h, int w) const
{
    const auto [N, C, H, W] =
        std::tuple{shape_[0], shape_[1], shape_[2], shape_[3]};
    (void)N;
    return data_[((static_cast<std::size_t>(n) * C + c) * H + h) * W + w];
}

Tensor
Tensor::reshaped(std::vector<int> new_shape) const
{
    if (shapeNumel(new_shape) != numel())
        fatal("Tensor::reshaped: element count mismatch (", numel(),
              " != ", shapeNumel(new_shape), ")");
    Tensor t(std::move(new_shape));
    t.data_ = data_;
    return t;
}

void
Tensor::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < shape_.size(); ++i)
        oss << shape_[i] << (i + 1 == shape_.size() ? "" : ", ");
    oss << ']';
    return oss.str();
}

void
gemm(const float *a, const float *b, float *c, int m, int k, int n,
     bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) *
                              static_cast<std::size_t>(n));
    // i-k-j order: the inner loop is contiguous in both B and C, which
    // the compiler vectorizes.
    for (int i = 0; i < m; ++i) {
        const float *arow = a + static_cast<std::size_t>(i) * k;
        float *crow = c + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f)
                continue;
            const float *brow = b + static_cast<std::size_t>(kk) * n;
            for (int j = 0; j < n; ++j)
                // vblint: assoc-ok(k advances in fixed index order)
                crow[j] += aik * brow[j];
        }
    }
}

void
gemmTransA(const float *a, const float *b, float *c, int m, int k, int n,
           bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) *
                              static_cast<std::size_t>(n));
    // C[m,n] = sum_kk A[kk,m]^T B[kk,n]; A row kk is contiguous in m.
    for (int kk = 0; kk < k; ++kk) {
        const float *arow = a + static_cast<std::size_t>(kk) * m;
        const float *brow = b + static_cast<std::size_t>(kk) * n;
        for (int i = 0; i < m; ++i) {
            const float aki = arow[i];
            if (aki == 0.0f)
                continue;
            float *crow = c + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                // vblint: assoc-ok(k advances in fixed index order)
                crow[j] += aki * brow[j];
        }
    }
}

void
gemmTransB(const float *a, const float *b, float *c, int m, int k, int n,
           bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) *
                              static_cast<std::size_t>(n));
    // C[i,j] = dot(A row i, B row j): both contiguous in k.
    for (int i = 0; i < m; ++i) {
        const float *arow = a + static_cast<std::size_t>(i) * k;
        float *crow = c + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
            const float *brow = b + static_cast<std::size_t>(j) * k;
            float acc = 0.0f;
            for (int kk = 0; kk < k; ++kk)
                // vblint: assoc-ok(dot product in fixed k order)
                acc += arow[kk] * brow[kk];
            // vblint: assoc-ok(single accumulated dot per (i,j) cell)
            crow[j] += acc;
        }
    }
}

} // namespace vboost::dnn
