#include "energy/supply_config.hpp"

#include "common/logging.hpp"

namespace vboost::energy {

namespace {

Farad
bankLoad(const circuit::TechnologyParams &tech)
{
    // One bank = two 4 KB macros on the boosted rail.
    return tech.macroArrayCap * 2 + tech.fixedParasiticCap;
}

} // namespace

SupplyConfigurator::SupplyConfigurator(
    const circuit::TechnologyParams &tech,
    const circuit::BoosterDesign &design, int num_banks)
    // One booster column per macro; a bank spans two macros.
    : energy_(tech), booster_(design.scaled(2), bankLoad(tech), tech),
      ldo_(),
      numBanks_(num_banks), numMacros_(2 * num_banks)
{
    if (num_banks < 1)
        fatal("SupplyConfigurator: at least one bank required");
}

Volt
SupplyConfigurator::boostedVoltage(Volt vdd, int level) const
{
    return booster_.boostedVoltage(vdd, level);
}

EnergyBreakdown
SupplyConfigurator::singleSupplyDynamic(const Workload &w, Volt v) const
{
    EnergyBreakdown e;
    e.sram = energy_.sramAccessEnergy(v, numBanks_) *
             static_cast<double>(w.sramAccesses);
    e.pe = energy_.peOpEnergy(v) * static_cast<double>(w.computeOps);
    return e;
}

EnergyBreakdown
SupplyConfigurator::boostedDynamic(const Workload &w, Volt vdd,
                                   int level) const
{
    return boostedDynamicMulti({{w.sramAccesses, level}}, w.computeOps,
                               vdd);
}

EnergyBreakdown
SupplyConfigurator::boostedDynamicMulti(
    const std::vector<std::pair<std::uint64_t, int>> &accesses_by_level,
    std::uint64_t compute_ops, Volt vdd) const
{
    EnergyBreakdown e;
    for (const auto &[accesses, level] : accesses_by_level) {
        const Volt vddv = booster_.boostedVoltage(vdd, level);
        // vblint: assoc-ok(levels summed in caller-supplied fixed order)
        e.sram += energy_.sramAccessEnergy(vddv, numBanks_) *
                  static_cast<double>(accesses);
        // vblint: assoc-ok(levels summed in caller-supplied fixed order)
        e.booster += booster_.boostEventEnergy(vdd, level) *
                     static_cast<double>(accesses);
    }
    e.pe = energy_.peOpEnergy(vdd) * static_cast<double>(compute_ops);
    return e;
}

EnergyBreakdown
SupplyConfigurator::dualSupplyDynamic(const Workload &w, Volt vh,
                                      Volt vl) const
{
    EnergyBreakdown e;
    e.sram = energy_.sramAccessEnergy(vh, numBanks_) *
             static_cast<double>(w.sramAccesses);
    e.pe = energy_.peOpEnergy(vl) * static_cast<double>(w.computeOps);
    // Eq. (6): the logic energy is delivered through the LDO; the
    // difference between input and load energy is dissipated in it.
    const Joule pe_at_input = ldo_.inputEnergy(e.pe, vl, vh);
    e.ldoLoss = pe_at_input - e.pe;
    return e;
}

Joule
SupplyConfigurator::singleSupplyLeakagePerCycle(Volt v, Hertz f) const
{
    const Watt p = energy_.sramLeakage(v, numMacros_) + energy_.peLeakage(v);
    return energy_.leakagePerCycle(p, f);
}

Joule
SupplyConfigurator::boostedLeakagePerCycle(Volt vdd, Hertz f) const
{
    // Eq. (4): LE = LE(SRAM, Vdd) + LE(BC, Vdd) + LE(PE, Vdd): boosting
    // is confined to access cycles, so everything idles at Vdd.
    const Watt p = energy_.sramLeakage(vdd, numMacros_) +
                   booster_.leakagePower(vdd) *
                       static_cast<double>(numBanks_) +
                   energy_.peLeakage(vdd);
    return energy_.leakagePerCycle(p, f);
}

Joule
SupplyConfigurator::dualSupplyLeakagePerCycle(Volt vh, Volt vl,
                                              Hertz f) const
{
    // Eq. (7): LE = LE(SRAM, Vh) + LE(PE, Vl) / eta.
    const Watt sram = energy_.sramLeakage(vh, numMacros_);
    const Watt pe = ldo_.inputPower(energy_.peLeakage(vl), vl, vh);
    return energy_.leakagePerCycle(sram + pe, f);
}

} // namespace vboost::energy
