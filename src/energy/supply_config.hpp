/**
 * @file
 * The three power-supply configurations the paper compares (Sec. 5.2)
 * and their energy equations:
 *
 * - Single supply (Eq. 2, 4): logic and SRAM share one rail at Vddv.
 * - Boosted (Eq. 3, 4): one chip rail at Vdd; only SRAM accesses are
 *   boosted to Vddv(level) by the per-bank booster, paying E(BC, Vdd)
 *   per access; idle SRAM leaks at Vdd.
 * - Dual supply (Eq. 6, 7): SRAM held at Vh, logic at Vl derived from
 *   Vh through an LDO with efficiency eta = (Vl/Vh) * eta_i (Eq. 5).
 */

#ifndef VBOOST_ENERGY_SUPPLY_CONFIG_HPP
#define VBOOST_ENERGY_SUPPLY_CONFIG_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/booster.hpp"
#include "circuit/energy_model.hpp"
#include "circuit/ldo.hpp"

namespace vboost::energy {

/** Activity summary of a workload at one operating point. */
struct Workload
{
    /** SRAM accesses (SRAMAcc in the paper's equations). */
    std::uint64_t sramAccesses = 0;
    /** Compute (multiply-accumulate) operations (NC). */
    std::uint64_t computeOps = 0;
};

/** Dynamic-energy breakdown of one configuration evaluation. */
struct EnergyBreakdown
{
    /** SRAM array access energy. */
    Joule sram{0.0};
    /** Processing-element energy (at the logic rail). */
    Joule pe{0.0};
    /** Booster circuit energy (boosted configuration only). */
    Joule booster{0.0};
    /** Energy burned in the LDO (dual-supply configuration only). */
    Joule ldoLoss{0.0};

    /** Total dynamic energy. */
    Joule total() const { return sram + pe + booster + ldoLoss; }
};

/**
 * Evaluates the paper's energy equations for a chip with a banked,
 * boost-enabled memory of a given size.
 */
class SupplyConfigurator
{
  public:
    /**
     * @param tech technology constants.
     * @param design per-bank booster design.
     * @param num_banks banks in the on-chip memory (access mux depth
     *        and leakage scale with this).
     */
    SupplyConfigurator(const circuit::TechnologyParams &tech,
                       const circuit::BoosterDesign &design, int num_banks);

    /** Boosted SRAM voltage for a chip supply and level. */
    Volt boostedVoltage(Volt vdd, int level) const;

    /** Number of programmable boost levels. */
    int levels() const { return booster_.levels(); }

    /** Eq. (2): single shared rail at v. */
    EnergyBreakdown singleSupplyDynamic(const Workload &w, Volt v) const;

    /** Eq. (3) with one uniform boost level for all accesses. */
    EnergyBreakdown boostedDynamic(const Workload &w, Volt vdd,
                                   int level) const;

    /**
     * Eq. (3) general form: accesses partitioned by boost level
     * (application-controlled spatial/temporal programmability).
     *
     * @param accesses_by_level (access count, boost level) pairs.
     * @param compute_ops NC.
     * @param vdd chip supply.
     */
    EnergyBreakdown boostedDynamicMulti(
        const std::vector<std::pair<std::uint64_t, int>> &accesses_by_level,
        std::uint64_t compute_ops, Volt vdd) const;

    /** Eq. (6): SRAM at vh, logic at vl out of an LDO fed from vh. */
    EnergyBreakdown dualSupplyDynamic(const Workload &w, Volt vh,
                                      Volt vl) const;

    /** Eq. (4) specialization: single rail leakage energy per cycle. */
    Joule singleSupplyLeakagePerCycle(Volt v, Hertz f) const;

    /** Eq. (4): boosted config leakage per cycle — everything idles at
     *  Vdd; the booster column adds its own leakage. */
    Joule boostedLeakagePerCycle(Volt vdd, Hertz f) const;

    /** Eq. (7): dual supply leakage per cycle — SRAM leaks at Vh and
     *  the logic leakage is paid through the LDO. */
    Joule dualSupplyLeakagePerCycle(Volt vh, Volt vl, Hertz f) const;

    /** The booster model in use. */
    const circuit::BoosterBank &booster() const { return booster_; }

    /** The LDO model in use. */
    const circuit::LdoRegulator &ldo() const { return ldo_; }

    /** The per-event energy model in use. */
    const circuit::EnergyModel &energyModel() const { return energy_; }

  private:
    circuit::EnergyModel energy_;
    circuit::BoosterBank booster_;
    circuit::LdoRegulator ldo_;
    int numBanks_;
    int numMacros_;
};

} // namespace vboost::energy

#endif // VBOOST_ENERGY_SUPPLY_CONFIG_HPP
