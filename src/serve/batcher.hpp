/**
 * @file
 * Dynamic batcher (DESIGN.md §9): groups admitted requests by
 * (tenant, SLO class) — a batch runs at one operating point, so it can
 * only contain requests with the same accuracy contract — and closes a
 * group when it reaches the maximum batch size or when its oldest
 * request has waited the maximum number of microticks on the virtual
 * clock. Everything is deterministic: groups are kept in a sorted map,
 * due groups close in (deadline, key) order, and batch sequence
 * numbers are assigned at close time.
 */

#ifndef VBOOST_SERVE_BATCHER_HPP
#define VBOOST_SERVE_BATCHER_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/request.hpp"

namespace vboost::serve {

/** Batch-formation policy. */
struct BatcherConfig
{
    /** Requests per batch at which a group closes immediately. */
    int maxBatchSize = 8;
    /** Microticks the oldest request may wait before the group closes
     *  regardless of size. */
    Tick maxWaitTicks = 2000;
};

/** A closed batch, ready for planning and execution. */
struct FormedBatch
{
    /** Formation sequence number (0, 1, 2, ... in close order). */
    std::uint64_t seq = 0;
    std::string tenant;
    SloClass slo = SloClass::Silver;
    /** Member requests, in admission order. */
    std::vector<InferenceRequest> requests;
    /** Virtual-clock instant the batch closed. */
    Tick formedTick = 0;
};

/** Deterministic size-or-deadline batcher over (tenant, SLO) groups. */
class DynamicBatcher
{
  public:
    explicit DynamicBatcher(BatcherConfig cfg);

    /**
     * Add an admitted request to its group. Returns the closed batch
     * when this request fills the group to maxBatchSize.
     */
    std::optional<FormedBatch> add(const InferenceRequest &req);

    /**
     * Close every group whose deadline (oldest arrival + maxWaitTicks)
     * is <= `now`, in (deadline, tenant, slo) order. Each batch's
     * formedTick is its own deadline, not `now`, so late sweeps (and
     * the end-of-trace flush with now = kNever) stay exact.
     */
    std::vector<FormedBatch> closeDue(Tick now);

    /** Earliest group deadline, if any group is pending. */
    std::optional<Tick> nextDeadline() const;

    /** Requests currently pending across all groups. */
    std::size_t pendingCount() const { return pending_; }

    /** Sentinel for closeDue: flush everything. */
    static constexpr Tick kNever = ~Tick{0};

    const BatcherConfig &config() const { return cfg_; }

  private:
    using GroupKey = std::pair<std::string, int>;

    struct Group
    {
        std::vector<InferenceRequest> requests;
        Tick oldestArrival = 0;
    };

    FormedBatch close(const GroupKey &key, Group &&group, Tick formed);

    BatcherConfig cfg_;
    std::map<GroupKey, Group> groups_;
    std::uint64_t nextSeq_ = 0;
    std::size_t pending_ = 0;
};

} // namespace vboost::serve

#endif // VBOOST_SERVE_BATCHER_HPP
