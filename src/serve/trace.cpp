#include "serve/trace.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace vboost::serve {

std::vector<InferenceRequest>
generatePoissonTrace(const TraceConfig &cfg)
{
    if (cfg.requestsPerTick <= 0.0)
        fatal("generatePoissonTrace: requestsPerTick must be > 0, got ",
              cfg.requestsPerTick);
    if (cfg.tenants.empty())
        fatal("generatePoissonTrace: at least one tenant required");
    if (cfg.samplePoolSize < 1)
        fatal("generatePoissonTrace: samplePoolSize must be >= 1");

    double total_share = 0.0;
    for (const auto &tenant : cfg.tenants) {
        if (tenant.trafficShare <= 0.0)
            fatal("generatePoissonTrace: tenant '", tenant.name,
                  "' has non-positive traffic share ", tenant.trafficShare);
        total_share += tenant.trafficShare; // vblint: assoc-ok(serial pass in tenant config order)
    }

    // Independent streams per draw kind, so e.g. adding a tenant to the
    // mix does not perturb the arrival process.
    Rng base(cfg.seed);
    Rng arrivals = base.split(1);
    Rng tenant_picks = base.split(2);
    Rng sample_picks = base.split(3);

    std::vector<InferenceRequest> trace;
    trace.reserve(cfg.numRequests);
    double t = 0.0;
    for (std::size_t i = 0; i < cfg.numRequests; ++i) {
        // Exponential inter-arrival; uniform() is in [0, 1) so the log
        // argument stays in (0, 1].
        // vblint: assoc-ok(arrival-time integration is serial in trace order by construction)
        t += -std::log(1.0 - arrivals.uniform()) / cfg.requestsPerTick;

        double pick = tenant_picks.uniform() * total_share;
        const TenantSpec *chosen = &cfg.tenants.back();
        for (const auto &tenant : cfg.tenants) {
            if (pick < tenant.trafficShare) {
                chosen = &tenant;
                break;
            }
            pick -= tenant.trafficShare;
        }

        InferenceRequest req;
        req.id = i;
        req.tenant = chosen->name;
        req.slo = chosen->slo;
        req.sample =
            static_cast<std::size_t>(sample_picks.uniformInt(
                static_cast<std::uint64_t>(cfg.samplePoolSize)));
        req.arrivalTick = static_cast<Tick>(std::floor(t));
        trace.push_back(std::move(req));
    }
    return trace;
}

std::vector<TenantMix>
standardServeMixes()
{
    return {
        {"gold", {{"acme", SloClass::Gold, 1.0}}},
        {"mixed",
         {{"acme", SloClass::Gold, 0.3},
          {"globex", SloClass::Silver, 0.4},
          {"initech", SloClass::Bronze, 0.3}}},
        {"bronze", {{"batchco", SloClass::Bronze, 1.0}}},
    };
}

TenantMix
scaledTenantMix(std::size_t num_tenants)
{
    if (num_tenants < 1)
        fatal("scaledTenantMix: num_tenants must be >= 1");
    static constexpr SloClass kRoundRobin[] = {
        SloClass::Gold, SloClass::Silver, SloClass::Bronze};
    TenantMix mix;
    mix.name = "scaled-" + std::to_string(num_tenants);
    mix.tenants.reserve(num_tenants);
    for (std::size_t i = 0; i < num_tenants; ++i) {
        std::string name = std::to_string(i);
        name.insert(0, name.size() < 4 ? 4 - name.size() : 0, '0');
        mix.tenants.push_back({"tenant-" + name, kRoundRobin[i % 3],
                               1.0 / static_cast<double>(i + 1)});
    }
    return mix;
}

} // namespace vboost::serve
