/**
 * @file
 * Operating-point planner of the serving runtime (DESIGN.md §9): maps
 * an accuracy-SLO class to the cheapest (Vdd, per-data-type boost
 * level) point whose predicted accuracy still meets the class target —
 * the paper's iso-accuracy controller (Sec. 6, Fig. 15) applied per
 * request class instead of per study. Weights get the minimal level
 * meeting the accuracy target via core::TradeoffExplorer; inputs get
 * the minimal level clearing the Table-2 reliability floor (Vddv_i >
 * 0.44 V). A per-tenant feedback hook consumes the resilience
 * monitor's measured error rate and steps the tenant up a ladder of
 * increasingly conservative Vdd points when the EWMA exceeds a
 * threshold (MATIC/ThUnderVolt-style online scaling), and back down
 * when the memory proves quiet.
 */

#ifndef VBOOST_SERVE_PLANNER_HPP
#define VBOOST_SERVE_PLANNER_HPP

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/tradeoff.hpp"
#include "recovery/recovery.hpp"
#include "serve/request.hpp"
#include "timing/replay_policy.hpp"
#include "timing/timing_model.hpp"

namespace vboost::serve {

/** Per-inference memory/compute footprint used for energy planning. */
struct InferenceFootprint
{
    /** Weight-memory accesses per inference. */
    std::uint64_t weightAccesses = 0;
    /** Input-memory accesses per inference. */
    std::uint64_t inputAccesses = 0;
    /** Partial-sum accesses per inference (held at the input level). */
    std::uint64_t psumAccesses = 0;
    /** Multiply-accumulate operations per inference. */
    std::uint64_t computeOps = 0;
};

/** Planner policy knobs. */
struct PlannerConfig
{
    /** Candidate chip supply voltages, low to high. */
    std::vector<Volt> vddGrid{Volt(0.38), Volt(0.42), Volt(0.46),
                              Volt(0.50), Volt(0.55), Volt(0.60)};
    /** Fraction of fault-free accuracy each SLO class must retain
     *  (indexed by SloClass: Gold, Silver, Bronze). */
    std::array<double, kNumSloClasses> accuracyFraction{0.97, 0.92, 0.85};
    /** Table-2 footnote reliability floor for the input memory. */
    Volt inputVddvFloor{0.44};
    /** EWMA smoothing factor for the observed error rate. */
    double ewmaAlpha = 0.25;
    /** EWMA error rate above which a tenant steps to a safer Vdd. */
    double stepUpThreshold = 0.08;
    /** EWMA error rate below which a tenant steps back down. */
    double stepDownThreshold = 0.01;

    /**
     * Candidate underscaled datapath rails for 2-D (V_logic, V_sram)
     * planning, low to high. Empty = 1-D planning: logic runs at Vdd
     * with no timing speculation, exactly the legacy behavior. When
     * non-empty, each Vdd rung is jointly optimized: the cheapest
     * feasible V_logic <= Vdd (including the no-underscale fallback)
     * wins on planned energy per inference.
     */
    std::vector<Volt> vLogicGrid{};
    /** Pipeline structure of the timing-speculative datapath. */
    timing::TimingParams timingParams;
    /** Replay policy of the underscaled candidates. */
    timing::ReplayPolicy replayPolicy = timing::ReplayPolicy::razor();
    /** Target datapath clock the timing predictions are made at. */
    Hertz datapathClock{50e6};
    /** Planned per-op corrupted-commit probability above which an
     *  underscaled rail is infeasible (budget exhaustion would leak
     *  corrupted MACs into inference). */
    double maxCorruptedRate = 1e-9;

    /**
     * Recovery options the planner may select per SLO class, on top
     * of the implicit boost-only RecoveryMode::None candidate
     * (DESIGN.md §15). Each option carries its own accuracy-vs-voltage
     * curve (e.g. a sampled ChipEvaluator frontier for a MATIC
     * retrained model or a NeuralFuse transform) and its per-inference
     * energy overheads, so "lower Vdd + recovery" competes against
     * "higher boost" on planned energy. Empty = legacy boost-only
     * planning. Options must not carry RecoveryMode::None.
     */
    std::vector<recovery::PlannedRecovery> recoveryOptions{};
};

/** One fully resolved operating point for a batch. */
struct OperatingPlan
{
    /** Chip supply voltage. */
    Volt vdd{0.0};
    /** Boost level for weight-memory accesses. */
    int weightLevel = 0;
    /** Boost level for input/psum accesses. */
    int inputLevel = 0;
    /** Boosted SRAM voltage of weight accesses. */
    Volt vddvWeights{0.0};
    /** Boosted SRAM voltage of input accesses. */
    Volt vddvInputs{0.0};
    /** Absolute accuracy the SLO class demands. */
    double targetAccuracy = 0.0;
    /** Accuracy the planner's model predicts at vddvWeights. */
    double plannedAccuracy = 0.0;
    /** Planned dynamic energy per inference. */
    Joule energyPerInference{0.0};
    /** Ladder position the feedback loop applied (0 = base plan). */
    int vddStep = 0;

    /** Underscaled datapath rail (0 = logic at vdd, no speculation). */
    Volt vLogic{0.0};
    /** Planned replay issues per op at vLogic. */
    double replayRate = 0.0;
    /** Planned bubble (flush/refill + replay-slowdown) cycles per op. */
    double bubbleRate = 0.0;
    /** Planned per-op corrupted-commit probability at vLogic. */
    double corruptedRate = 0.0;
    /** Effective-period stretch (worst-case-clocked policies only). */
    double clockStretch = 1.0;

    /** Selected recovery strategy (None = boost-only). */
    recovery::RecoveryMode recoveryMode = recovery::RecoveryMode::None;
    /** The recovery path's extra MACs per inference. */
    std::uint64_t recoveryComputeOps = 0;
    /** The recovery path's extra input-memory accesses per inference. */
    std::uint64_t recoveryInputAccesses = 0;
    /** Planned per-inference energy of the recovery path (already
     *  included in energyPerInference). */
    Joule recoveryEnergy{0.0};
};

/**
 * Maps (tenant, SLO class) to an operating plan and adapts it online
 * from measured error rates. All state is deterministic: plans are
 * precomputed per class on a fixed Vdd grid, and feedback only moves a
 * per-tenant ladder index.
 */
class OperatingPointPlanner
{
  public:
    /**
     * @param ctx shared study configuration.
     * @param num_banks banks in the weight memory.
     * @param accuracy model accuracy as a function of the weight-SRAM
     *        voltage (e.g. a sampled fi::AccuracyCurve).
     * @param fault_free_accuracy accuracy ceiling the SLO fractions
     *        are taken against.
     * @param footprint per-inference activity for energy planning.
     * @param cfg policy knobs.
     */
    OperatingPointPlanner(const core::SimContext &ctx, int num_banks,
                          core::TradeoffExplorer::AccuracyFn accuracy,
                          double fault_free_accuracy,
                          InferenceFootprint footprint,
                          PlannerConfig cfg = {});

    /**
     * The plan a batch of (tenant, slo) executes under right now. The
     * base plan per class is the cheapest feasible grid point; the
     * tenant's feedback step moves it toward higher Vdd.
     */
    const OperatingPlan &planFor(const std::string &tenant, SloClass slo);

    /**
     * The plan for one class at one specific supply voltage; nullopt
     * when no boost level meets the class target there. Exposed for
     * the planner-monotonicity acceptance test.
     */
    std::optional<OperatingPlan> planAtVdd(SloClass slo, Volt vdd) const;

    /**
     * The plan for one class at one explicit (Vdd, V_logic) joint
     * point; nullopt when the SRAM side misses the class target or the
     * rail's planned corrupted-commit rate exceeds the config bound.
     * v_logic = 0 requests the no-underscale fallback. Exposed for the
     * joint-sweep bench and the 2-D planner acceptance tests.
     */
    std::optional<OperatingPlan> planAt(SloClass slo, Volt vdd,
                                        Volt v_logic) const;

    /**
     * As planAt(slo, vdd, v_logic), but planned under one explicit
     * recovery option: feasibility uses the option's accuracy curve
     * and the energy objective pays the option's per-inference
     * overheads. Exposed for the recovery bench and the planner
     * acceptance tests.
     */
    std::optional<OperatingPlan>
    planAt(SloClass slo, Volt vdd, Volt v_logic,
           const recovery::PlannedRecovery &rec) const;

    /**
     * Feed back one batch's measured word error rate (errors / reads
     * from resilience::ResilienceStats). Updates the tenant's EWMA and
     * possibly its ladder step. Must be called serially in batch
     * order (§7 discipline).
     */
    void observeErrorRate(const std::string &tenant, double error_rate);

    /** Absolute accuracy target of a class. */
    double targetAccuracy(SloClass slo) const;

    /** Current ladder step of a tenant (0 when never seen). */
    int tenantStep(const std::string &tenant) const;

    /** Current EWMA error rate of a tenant (0 when never seen). */
    double tenantEwma(const std::string &tenant) const;

    /** Number of ladder rungs available to a class. */
    std::size_t ladderSize(SloClass slo) const;

    const PlannerConfig &config() const { return cfg_; }

  private:
    struct TenantState
    {
        double ewma = 0.0;
        int step = 0;
        bool seeded = false;
    };

    /** Shared implementation: `rec` = nullptr plans boost-only. */
    std::optional<OperatingPlan>
    planImpl(SloClass slo, Volt vdd, Volt v_logic,
             const recovery::PlannedRecovery *rec) const;

    core::TradeoffExplorer explorer_;
    core::TradeoffExplorer::AccuracyFn accuracy_;
    double faultFreeAccuracy_;
    InferenceFootprint footprint_;
    PlannerConfig cfg_;
    /** Timing-error predictor (built when vLogicGrid is non-empty). */
    std::optional<timing::TimingErrorModel> timingModel_;

    /** Feasible plans per class, ordered by ascending Vdd, starting at
     *  the cheapest-energy rung (index 0 = base plan). */
    std::array<std::vector<OperatingPlan>, kNumSloClasses> ladder_;

    std::map<std::string, TenantState> tenants_;

    int maxStep_ = 0;
};

} // namespace vboost::serve

#endif // VBOOST_SERVE_PLANNER_HPP
