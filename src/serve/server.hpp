/**
 * @file
 * Multi-tenant inference serving runtime (DESIGN.md §9). The
 * InferenceServer replays a request trace through the full pipeline:
 *
 *   bounded queue -> dynamic batcher -> operating-point planner
 *       -> worker pool (DanteChip through ResilientMemory)
 *       -> deterministic virtual worker slots -> per-request outcomes
 *
 * Execution follows the §7 determinism discipline: batch formation and
 * planner feedback are serial in trace/batch order, batch *execution*
 * fans out on the shared thread pool with per-slot scratch state and
 * per-batch counter-split RNG streams, and timing comes from a
 * deterministic FCFS post-pass over virtual worker slots — so
 * outcomes, stats and the stats fingerprint are bitwise identical at
 * any thread count.
 */

#ifndef VBOOST_SERVE_SERVER_HPP
#define VBOOST_SERVE_SERVER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "accel/dante.hpp"
#include "accel/dataflow.hpp"
#include "accel/perf_model.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/network.hpp"
#include "fi/injector.hpp"
#include "obs/observability.hpp"
#include "obs/trace.hpp"
#include "resilience/policy.hpp"
#include "resilience/resilient_memory.hpp"
#include "serve/batcher.hpp"
#include "serve/planner.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "sram/failure_model.hpp"
#include "sram/fault_map.hpp"

namespace vboost::serve {

/** Serving-runtime configuration. */
struct ServerConfig
{
    /** Bounded request-queue capacity. */
    std::size_t queueCapacity = 64;
    /** Per-tenant queue share (0 = disabled). */
    std::size_t perTenantQueueCap = 0;
    /** Batch-formation policy. */
    BatcherConfig batcher;
    /** Virtual worker slots batches are dispatched onto (models the
     *  accelerator service parallelism; part of the results). */
    int workerSlots = 4;
    /** Execution threads for batch evaluation (0 = all hardware
     *  threads). NEVER affects results, only wall-clock. */
    int numThreads = 0;
    /** Batches per planner-feedback epoch: plans are frozen for an
     *  epoch, executed in parallel, and the measured error rates are
     *  fed back serially in batch order between epochs. */
    int feedbackInterval = 4;
    /** Resilient SRAM access policy batches execute under (startLevel
     *  is overridden per batch by the planner's weight level). */
    resilience::ResiliencePolicy policy =
        resilience::ResiliencePolicy::closedLoop();
    /** Seed for the device fault map and per-batch RNG streams. */
    std::uint64_t seed = 42;
    /** Virtual-clock resolution (1e6 = microsecond ticks). */
    double ticksPerSecond = 1e6;
    /** Per-read flip probability of a faulty input-memory cell. */
    double inputFlipProb = 0.5;
    /** Chip geometry. */
    accel::DanteConfig chip;
    /** Execution resources of the performance model. */
    accel::PerfConfig perf;
    /** Cell layout of the modeled memories. */
    fi::MemoryLayout layout;

    /**
     * Throw FatalError unless the knobs are self-consistent: rejects
     * workerSlots <= 0, queueCapacity == 0, feedbackInterval < 1,
     * non-positive ticksPerSecond, and a policy that does not fit the
     * chip's boost-level range. Called by the InferenceServer
     * constructor; callers composing configs (the cluster tier) call
     * it directly to fail fast before building nodes.
     */
    void validate() const;
};

/** Everything one executed batch did and cost. */
struct BatchRecord
{
    std::uint64_t seq = 0;
    std::string tenant;
    SloClass slo = SloClass::Silver;
    std::size_t size = 0;
    /** Operating point the batch ran at. */
    OperatingPlan plan;

    Tick formedTick = 0;
    Tick startTick = 0;
    Tick completionTick = 0;
    /** Virtual worker slot the batch ran on. */
    int slot = 0;
    /** Modeled service time in ticks. */
    Tick serviceTicks = 0;

    /** Resilient-pipeline counters of the batch's weight staging. */
    resilience::ResilienceStats resilience;
    /** Word error rate the feedback loop observed:
     *  (reads - cleanReads) / reads. */
    double errorRate = 0.0;
    /** Residual weight-bit flips that reached inference. */
    std::uint64_t residualFlips = 0;

    /** Modeled total energy (dynamic + leakage) of the batch. */
    Joule modeledEnergy{0.0};
    /** Measured SRAM energy: bank access + boost + spare rows. */
    Joule sramEnergy{0.0};
    /** Per-bank boost energy (joules) of the batch's weight staging;
     *  counters reset per batch, so this is batch-local attribution. */
    std::vector<double> bankBoostEnergyJ;

    /** Per-request predictions / correctness, in request order. */
    std::vector<int> predictions;
    std::vector<bool> correct;
};

/** Per-tenant (and total) accounting. */
struct TenantStats
{
    std::uint64_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedTenantQuota = 0;
    std::uint64_t batches = 0;
    std::uint64_t inferences = 0;
    std::uint64_t correct = 0;
    std::uint64_t retries = 0;
    std::uint64_t escalations = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t uncorrected = 0;
    /** Modeled energy in picojoules. */
    double energyPj = 0.0;
    std::uint64_t queueWaitTicksSum = 0;
    std::uint64_t latencyTicksSum = 0;
    std::uint64_t maxLatencyTicks = 0;
    /** Planner ladder step the tenant ended the run on. */
    int finalVddStep = 0;

    friend bool operator==(const TenantStats &,
                           const TenantStats &) = default;
};

/** Snapshot of one run's accounting. */
struct ServerStats
{
    TenantStats total;
    std::map<std::string, TenantStats> perTenant;

    double meanBatchSize = 0.0;
    double p50LatencyTicks = 0.0;
    double p95LatencyTicks = 0.0;
    /** Fraction of served inferences predicted correctly. */
    double accuracy = 0.0;

    /**
     * FNV-1a digest over every field (including per-tenant entries in
     * map order). Two runs with equal fingerprints produced bitwise
     * identical accounting — the determinism acceptance check.
     */
    std::uint64_t fingerprint() const;

    friend bool operator==(const ServerStats &,
                           const ServerStats &) = default;
};

/** Full result of replaying one trace. */
struct ServeResult
{
    /** Per-request outcomes, in trace order. */
    std::vector<RequestOutcome> outcomes;
    /** Executed batches, in formation (seq) order. */
    std::vector<BatchRecord> batches;
    ServerStats stats;
};

/**
 * The serving runtime. Owns the planner and per-worker scratch chips;
 * borrows the trained network and the sample pool (both must outlive
 * the server).
 */
class InferenceServer
{
  public:
    /**
     * @param ctx shared study configuration.
     * @param net trained network served to all tenants.
     * @param pool labeled sample pool requests draw inputs from.
     * @param per_inference dataflow activity of one inference.
     * @param planner SLO -> operating point mapper (moved in).
     * @param cfg runtime configuration.
     */
    InferenceServer(const core::SimContext &ctx, dnn::Network &net,
                    const dnn::Dataset &pool,
                    accel::LayerActivity per_inference,
                    OperatingPointPlanner planner, ServerConfig cfg = {});

    /**
     * Replay a request trace (arrival ticks must be nondecreasing,
     * request ids unique, sample indices inside the pool) through the
     * whole pipeline. Resets no planner or worker-slot state between
     * calls, so successive runs continue the tenants' feedback
     * trajectories and the slots' carried backlog (see
     * resetWorkerBacklog()).
     */
    ServeResult run(const std::vector<InferenceRequest> &trace);

    const ServerConfig &config() const { return cfg_; }
    OperatingPointPlanner &planner() { return planner_; }

    /**
     * Clear the virtual worker slots' carried backlog. Slot
     * availability persists across run() calls (successive traces on
     * one device share its worker slots, like the planner feedback
     * trajectories); a restart — e.g. a cluster node returning from
     * Down — starts from idle slots again.
     */
    void resetWorkerBacklog();

    /**
     * Attach a metrics + trace sink (DESIGN.md §11). Each run()
     * publishes admission counters, queue-depth / batch-occupancy /
     * per-SLO latency histograms, resilience retry + boost-energy
     * attribution, and per-batch execution spans on the virtual clock
     * under `trace_pid`. `labels` is folded into every metric so one
     * registry can hold several sweep points. All recording happens on
     * the serial formation/aggregation paths, so the metrics
     * fingerprint and the exported trace are bitwise identical at any
     * thread count (§7). Pass nullptr to detach.
     */
    void attachObservability(obs::Observability *o,
                             std::uint64_t trace_pid = 0,
                             obs::Labels labels = {});

  private:
    /** Per-execution-slot scratch state (chip + network clone). */
    struct WorkerScratch
    {
        std::unique_ptr<accel::DanteChip> chip;
        std::unique_ptr<dnn::Network> net;
    };

    /** Serial formation pass: queue admission + batching. */
    std::vector<FormedBatch>
    formBatches(const std::vector<InferenceRequest> &trace,
                std::vector<RequestOutcome> &outcomes);

    /** Execute one batch on a worker slot's scratch state. */
    void executeBatch(const FormedBatch &batch, BatchRecord &rec,
                      WorkerScratch &scratch);

    /** FCFS assignment of batches onto virtual worker slots
     *  (continues from the slots' carried backlog). */
    void assignSlots(std::vector<BatchRecord> &records);

    /** Aggregate outcomes + batches into a ServerStats snapshot. */
    ServerStats aggregate(const std::vector<RequestOutcome> &outcomes,
                          const std::vector<BatchRecord> &records);

    /** Merge the attached base labels under `extra` (extra wins). */
    obs::Labels withBase(obs::Labels extra) const;

    /** Publish one run's metrics and spans (serial, §11). */
    void publishObservability(const ServeResult &result);

    core::SimContext ctx_;
    dnn::Network &net_;
    const dnn::Dataset &pool_;
    accel::LayerActivity perInference_;
    OperatingPointPlanner planner_;
    ServerConfig cfg_;

    accel::PerformanceModel perf_;
    sram::FailureRateModel failure_;
    /** The device's fault map (const, shared across workers). */
    sram::VulnerabilityMap deviceMap_;

    std::vector<WorkerScratch> scratch_;

    /** Tick each virtual worker slot frees up at; persists across
     *  run() calls (cleared by resetWorkerBacklog()). */
    std::vector<Tick> slotFreeAt_;

    /** Optional metrics/trace sink (never owned). */
    obs::Observability *obs_ = nullptr;
    std::uint64_t obsPid_ = 0;
    obs::Labels obsLabels_;
    /** Work-unit clock for the phase ScopeTimers (requests formed,
     *  batches executed, records aggregated). */
    obs::VirtualClock workClock_;
};

} // namespace vboost::serve

#endif // VBOOST_SERVE_SERVER_HPP
