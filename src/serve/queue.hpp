/**
 * @file
 * Bounded admission-control gate in front of the dynamic batcher
 * (DESIGN.md §9). The queue tracks how many admitted requests are
 * waiting to be batched — globally and per tenant — and sheds new
 * arrivals with a typed reason when a bound is hit, instead of letting
 * an overload grow the backlog (and tail latency) without limit.
 * Occupancy is released when the batcher closes a batch.
 */

#ifndef VBOOST_SERVE_QUEUE_HPP
#define VBOOST_SERVE_QUEUE_HPP

#include <cstdint>
#include <map>
#include <string>

#include "serve/request.hpp"

namespace vboost::serve {

/** Outcome of one admission decision. */
struct AdmissionDecision
{
    /** True when the request may enter the batcher. */
    bool admitted = false;
    /** Shed reason (meaningful only when !admitted). */
    ShedReason reason = ShedReason::QueueFull;

    static AdmissionDecision admit() { return {true, ShedReason::QueueFull}; }
    static AdmissionDecision shed(ShedReason r) { return {false, r}; }
};

/**
 * Bounded request queue with global and per-tenant occupancy limits.
 * Purely deterministic: decisions depend only on the admission order.
 */
class BoundedRequestQueue
{
  public:
    /**
     * @param capacity maximum requests waiting to be batched (>= 1).
     * @param per_tenant_cap per-tenant occupancy cap (0 = disabled).
     */
    explicit BoundedRequestQueue(std::size_t capacity,
                                 std::size_t per_tenant_cap = 0);

    /**
     * Admit `req` or shed it with a typed reason. Admission increments
     * the global and per-tenant occupancy.
     */
    AdmissionDecision tryAdmit(const InferenceRequest &req);

    /** Release `n` requests of `tenant` (their batch closed). */
    void release(const std::string &tenant, std::size_t n);

    /** Requests currently waiting to be batched. */
    std::size_t occupancy() const { return occupancy_; }

    /** Requests of one tenant currently waiting. */
    std::size_t tenantOccupancy(const std::string &tenant) const;

    std::size_t capacity() const { return capacity_; }
    std::size_t perTenantCap() const { return perTenantCap_; }

    /** Requests admitted so far. */
    std::uint64_t admitted() const { return admitted_; }

    /** Requests shed so far (all reasons). */
    std::uint64_t shed() const { return shedFull_ + shedQuota_; }

    /** Requests shed because the queue was full. */
    std::uint64_t shedQueueFull() const { return shedFull_; }

    /** Requests shed because the tenant exceeded its share. */
    std::uint64_t shedTenantQuota() const { return shedQuota_; }

  private:
    std::size_t capacity_;
    std::size_t perTenantCap_;
    std::size_t occupancy_ = 0;
    std::map<std::string, std::size_t> tenantOccupancy_;
    std::uint64_t admitted_ = 0;
    std::uint64_t shedFull_ = 0;
    std::uint64_t shedQuota_ = 0;
};

} // namespace vboost::serve

#endif // VBOOST_SERVE_QUEUE_HPP
