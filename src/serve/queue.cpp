#include "serve/queue.hpp"

#include "common/logging.hpp"

namespace vboost::serve {

const char *
toString(SloClass slo)
{
    switch (slo) {
      case SloClass::Gold:
        return "gold";
      case SloClass::Silver:
        return "silver";
      case SloClass::Bronze:
        return "bronze";
    }
    panic("toString: invalid SloClass");
}

const char *
toString(ShedReason reason)
{
    switch (reason) {
      case ShedReason::QueueFull:
        return "queue_full";
      case ShedReason::TenantQuotaExceeded:
        return "tenant_quota";
    }
    panic("toString: invalid ShedReason");
}

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity,
                                         std::size_t per_tenant_cap)
    : capacity_(capacity), perTenantCap_(per_tenant_cap)
{
    if (capacity_ < 1)
        fatal("BoundedRequestQueue: capacity must be >= 1");
    if (perTenantCap_ > capacity_)
        fatal("BoundedRequestQueue: per-tenant cap ", perTenantCap_,
              " exceeds capacity ", capacity_);
}

AdmissionDecision
BoundedRequestQueue::tryAdmit(const InferenceRequest &req)
{
    if (occupancy_ >= capacity_) {
        ++shedFull_;
        return AdmissionDecision::shed(ShedReason::QueueFull);
    }
    std::size_t &tenant = tenantOccupancy_[req.tenant];
    if (perTenantCap_ > 0 && tenant >= perTenantCap_) {
        ++shedQuota_;
        return AdmissionDecision::shed(ShedReason::TenantQuotaExceeded);
    }
    ++occupancy_;
    ++tenant;
    ++admitted_;
    return AdmissionDecision::admit();
}

void
BoundedRequestQueue::release(const std::string &tenant, std::size_t n)
{
    auto it = tenantOccupancy_.find(tenant);
    if (it == tenantOccupancy_.end() || it->second < n || occupancy_ < n)
        panic("BoundedRequestQueue::release: releasing ", n,
              " requests of '", tenant, "' that were never admitted");
    it->second -= n;
    occupancy_ -= n;
}

std::size_t
BoundedRequestQueue::tenantOccupancy(const std::string &tenant) const
{
    auto it = tenantOccupancy_.find(tenant);
    return it == tenantOccupancy_.end() ? 0 : it->second;
}

} // namespace vboost::serve
