#include "serve/planner.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"

namespace vboost::serve {

OperatingPointPlanner::OperatingPointPlanner(
    const core::SimContext &ctx, int num_banks,
    core::TradeoffExplorer::AccuracyFn accuracy, double fault_free_accuracy,
    InferenceFootprint footprint, PlannerConfig cfg)
    : explorer_(ctx, num_banks),
      accuracy_(std::move(accuracy)),
      faultFreeAccuracy_(fault_free_accuracy),
      footprint_(footprint),
      cfg_(std::move(cfg))
{
    if (!accuracy_)
        fatal("OperatingPointPlanner: accuracy function required");
    if (cfg_.vddGrid.empty())
        fatal("OperatingPointPlanner: empty Vdd grid");
    if (!std::is_sorted(cfg_.vddGrid.begin(), cfg_.vddGrid.end()))
        fatal("OperatingPointPlanner: Vdd grid must be ascending");
    for (double fraction : cfg_.accuracyFraction) {
        if (fraction <= 0.0 || fraction > 1.0)
            fatal("OperatingPointPlanner: accuracy fraction ", fraction,
                  " outside (0, 1]");
    }

    for (int c = 0; c < kNumSloClasses; ++c) {
        const auto slo = static_cast<SloClass>(c);
        std::vector<OperatingPlan> feasible;
        for (Volt vdd : cfg_.vddGrid) {
            if (auto plan = planAtVdd(slo, vdd))
                feasible.push_back(*plan);
        }
        if (feasible.empty())
            fatal("OperatingPointPlanner: no grid point meets the ",
                  toString(slo), " target ", targetAccuracy(slo));
        // The base plan is the cheapest feasible point; the rungs above
        // it (higher Vdd = wider margins) are where feedback can go.
        std::size_t cheapest = 0;
        for (std::size_t i = 1; i < feasible.size(); ++i) {
            if (feasible[i].energyPerInference <
                feasible[cheapest].energyPerInference)
                cheapest = i;
        }
        auto &ladder = ladder_[static_cast<std::size_t>(c)];
        ladder.assign(feasible.begin() +
                          static_cast<std::ptrdiff_t>(cheapest),
                      feasible.end());
        for (std::size_t step = 0; step < ladder.size(); ++step)
            ladder[step].vddStep = static_cast<int>(step);
        maxStep_ = std::max(maxStep_, static_cast<int>(ladder.size()) - 1);
    }
}

std::optional<OperatingPlan>
OperatingPointPlanner::planAtVdd(SloClass slo, Volt vdd) const
{
    const double target = targetAccuracy(slo);
    const auto weight_level =
        explorer_.minimalLevelForAccuracy(vdd, target, accuracy_);
    if (!weight_level)
        return std::nullopt;
    const auto input_level =
        explorer_.minimalLevelReaching(vdd, cfg_.inputVddvFloor);
    if (!input_level)
        return std::nullopt;

    OperatingPlan plan;
    plan.vdd = vdd;
    plan.weightLevel = *weight_level;
    plan.inputLevel = *input_level;
    plan.vddvWeights = explorer_.boostedVoltage(vdd, plan.weightLevel);
    plan.vddvInputs = explorer_.boostedVoltage(vdd, plan.inputLevel);
    plan.targetAccuracy = target;
    plan.plannedAccuracy = accuracy_(plan.vddvWeights);
    plan.energyPerInference =
        explorer_.supply()
            .boostedDynamicMulti(
                {{footprint_.weightAccesses, plan.weightLevel},
                 {footprint_.inputAccesses + footprint_.psumAccesses,
                  plan.inputLevel}},
                footprint_.computeOps, vdd)
            .total();
    return plan;
}

const OperatingPlan &
OperatingPointPlanner::planFor(const std::string &tenant, SloClass slo)
{
    const auto &ladder = ladder_[static_cast<std::size_t>(slo)];
    int step = 0;
    if (auto it = tenants_.find(tenant); it != tenants_.end())
        step = it->second.step;
    step = std::min(step, static_cast<int>(ladder.size()) - 1);
    return ladder[static_cast<std::size_t>(step)];
}

void
OperatingPointPlanner::observeErrorRate(const std::string &tenant,
                                        double error_rate)
{
    if (error_rate < 0.0)
        fatal("OperatingPointPlanner: negative error rate ", error_rate);
    TenantState &state = tenants_[tenant];
    if (!state.seeded) {
        state.ewma = error_rate;
        state.seeded = true;
    } else {
        state.ewma = cfg_.ewmaAlpha * error_rate +
                     (1.0 - cfg_.ewmaAlpha) * state.ewma;
    }
    if (state.ewma > cfg_.stepUpThreshold && state.step < maxStep_) {
        ++state.step;
        // The new rung changes the error regime; restart the average so
        // stale samples from the old rung cannot trigger a second step.
        state.ewma = 0.0;
    } else if (state.ewma < cfg_.stepDownThreshold && state.step > 0) {
        --state.step;
    }
}

double
OperatingPointPlanner::targetAccuracy(SloClass slo) const
{
    return faultFreeAccuracy_ *
           cfg_.accuracyFraction[static_cast<std::size_t>(slo)];
}

int
OperatingPointPlanner::tenantStep(const std::string &tenant) const
{
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.step;
}

double
OperatingPointPlanner::tenantEwma(const std::string &tenant) const
{
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0.0 : it->second.ewma;
}

std::size_t
OperatingPointPlanner::ladderSize(SloClass slo) const
{
    return ladder_[static_cast<std::size_t>(slo)].size();
}

} // namespace vboost::serve
