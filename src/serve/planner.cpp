#include "serve/planner.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hpp"

namespace vboost::serve {

namespace {

/** Planned datapath perturbation at one (V_logic, period) point. */
struct PlannedTiming
{
    double replayRate = 0.0;
    double bubbleRate = 0.0;
    double corruptedRate = 0.0;
};

/**
 * Closed-form expectation of the replay chain: the first issue
 * violates with p0 = opErrorProb at the target period; replay k is
 * issued iff all k previous issues violated and itself violates with
 * p1 = opErrorProb at the slowed replay period. Bubbles charge the
 * pipeline depth per detection plus the extra slowdown cycles each
 * replay occupies beyond its PE slot.
 */
PlannedTiming
predictTiming(const timing::TimingErrorModel &model,
              const timing::ReplayPolicy &policy, Volt v, Second period)
{
    const double p0 = model.opErrorProb(v, period);
    const double p1 = model.opErrorProb(
        v, Second(period.value() * policy.replaySlowdown));
    double replay_rate = 0.0;
    double detect_rate = p0;
    double reach = p0; // P(replay k is issued)
    for (int k = 1; k <= policy.replayBudget; ++k) {
        replay_rate += reach; // vblint: assoc-ok(fixed ascending-k geometric series, single-threaded)
        reach *= p1; // now P(replay k violates) = P(replay k+1 issued)
        detect_rate += reach; // vblint: assoc-ok(fixed ascending-k geometric series, single-threaded)
    }
    PlannedTiming t;
    t.replayRate = replay_rate;
    t.corruptedRate = reach; // all budget + 1 issues violated
    const double slowdown_extra =
        std::ceil(policy.replaySlowdown) - 1.0;
    t.bubbleRate =
        detect_rate * static_cast<double>(model.params().numStages()) +
        replay_rate * slowdown_extra;
    return t;
}

} // namespace

OperatingPointPlanner::OperatingPointPlanner(
    const core::SimContext &ctx, int num_banks,
    core::TradeoffExplorer::AccuracyFn accuracy, double fault_free_accuracy,
    InferenceFootprint footprint, PlannerConfig cfg)
    : explorer_(ctx, num_banks),
      accuracy_(std::move(accuracy)),
      faultFreeAccuracy_(fault_free_accuracy),
      footprint_(footprint),
      cfg_(std::move(cfg))
{
    if (!accuracy_)
        fatal("OperatingPointPlanner: accuracy function required");
    if (cfg_.vddGrid.empty())
        fatal("OperatingPointPlanner: empty Vdd grid");
    if (!std::is_sorted(cfg_.vddGrid.begin(), cfg_.vddGrid.end()))
        fatal("OperatingPointPlanner: Vdd grid must be ascending");
    for (double fraction : cfg_.accuracyFraction) {
        if (fraction <= 0.0 || fraction > 1.0)
            fatal("OperatingPointPlanner: accuracy fraction ", fraction,
                  " outside (0, 1]");
    }
    if (!cfg_.vLogicGrid.empty()) {
        if (!std::is_sorted(cfg_.vLogicGrid.begin(),
                            cfg_.vLogicGrid.end()))
            fatal("OperatingPointPlanner: V_logic grid must be "
                  "ascending");
        if (cfg_.datapathClock.value() <= 0.0)
            fatal("OperatingPointPlanner: datapath clock must be "
                  "positive");
        if (cfg_.maxCorruptedRate < 0.0 || cfg_.maxCorruptedRate > 1.0)
            fatal("OperatingPointPlanner: maxCorruptedRate outside "
                  "[0, 1]");
        cfg_.timingParams.validate();
        cfg_.replayPolicy.validate();
        if (!cfg_.replayPolicy.speculative)
            fatal("OperatingPointPlanner: a worst-case-clocked policy "
                  "has no underscaled candidates; leave vLogicGrid "
                  "empty instead");
        timingModel_.emplace(ctx.tech, cfg_.timingParams);
    }
    for (const auto &rec : cfg_.recoveryOptions) {
        rec.validate();
        if (rec.mode == recovery::RecoveryMode::None)
            fatal("OperatingPointPlanner: recoveryOptions must not "
                  "carry RecoveryMode::None (boost-only is the "
                  "implicit candidate)");
    }

    for (int c = 0; c < kNumSloClasses; ++c) {
        const auto slo = static_cast<SloClass>(c);
        std::vector<OperatingPlan> feasible;
        for (Volt vdd : cfg_.vddGrid) {
            if (auto plan = planAtVdd(slo, vdd))
                feasible.push_back(*plan);
        }
        if (feasible.empty())
            fatal("OperatingPointPlanner: no grid point meets the ",
                  toString(slo), " target ", targetAccuracy(slo));
        // The base plan is the cheapest feasible point; the rungs above
        // it (higher Vdd = wider margins) are where feedback can go.
        std::size_t cheapest = 0;
        for (std::size_t i = 1; i < feasible.size(); ++i) {
            if (feasible[i].energyPerInference <
                feasible[cheapest].energyPerInference)
                cheapest = i;
        }
        auto &ladder = ladder_[static_cast<std::size_t>(c)];
        ladder.assign(feasible.begin() +
                          static_cast<std::ptrdiff_t>(cheapest),
                      feasible.end());
        for (std::size_t step = 0; step < ladder.size(); ++step)
            ladder[step].vddStep = static_cast<int>(step);
        maxStep_ = std::max(maxStep_, static_cast<int>(ladder.size()) - 1);
    }
}

std::optional<OperatingPlan>
OperatingPointPlanner::planAtVdd(SloClass slo, Volt vdd) const
{
    // Candidates per rung: every recovery strategy (boost-only plus
    // each configured option) jointly with every datapath rail; the
    // cheapest feasible combination wins. Strategy order breaks energy
    // ties deterministically (boost-only first, then config order).
    auto best_over_rails =
        [&](const recovery::PlannedRecovery *rec)
        -> std::optional<OperatingPlan> {
        // The no-underscale point (logic at vdd) is always a candidate
        // — and the only one under 1-D planning — so joint planning
        // never loses feasibility the 1-D planner had.
        std::optional<OperatingPlan> best =
            planImpl(slo, vdd, Volt(0.0), rec);
        if (!best)
            return std::nullopt;
        for (Volt v_logic : cfg_.vLogicGrid) {
            if (vdd < v_logic)
                break; // grid ascends; only underscaled rails qualify
            const auto joint = planImpl(slo, vdd, v_logic, rec);
            if (joint &&
                joint->energyPerInference < best->energyPerInference)
                best = joint;
        }
        return best;
    };

    std::optional<OperatingPlan> best = best_over_rails(nullptr);
    for (const auto &rec : cfg_.recoveryOptions) {
        const auto candidate = best_over_rails(&rec);
        if (!candidate)
            continue;
        if (!best ||
            candidate->energyPerInference < best->energyPerInference)
            best = candidate;
    }
    return best;
}

std::optional<OperatingPlan>
OperatingPointPlanner::planAt(SloClass slo, Volt vdd, Volt v_logic) const
{
    return planImpl(slo, vdd, v_logic, nullptr);
}

std::optional<OperatingPlan>
OperatingPointPlanner::planAt(SloClass slo, Volt vdd, Volt v_logic,
                              const recovery::PlannedRecovery &rec) const
{
    return planImpl(slo, vdd, v_logic, &rec);
}

std::optional<OperatingPlan>
OperatingPointPlanner::planImpl(SloClass slo, Volt vdd, Volt v_logic,
                                const recovery::PlannedRecovery *rec) const
{
    const double target = targetAccuracy(slo);
    // Feasibility follows the strategy's own accuracy curve: a MATIC
    // retrained model or a NeuralFuse transform holds the target at a
    // lower weight voltage than the base model can.
    const core::TradeoffExplorer::AccuracyFn &oracle =
        rec != nullptr ? rec->accuracy : accuracy_;
    const auto weight_level =
        explorer_.minimalLevelForAccuracy(vdd, target, oracle);
    if (!weight_level)
        return std::nullopt;
    const auto input_level =
        explorer_.minimalLevelReaching(vdd, cfg_.inputVddvFloor);
    if (!input_level)
        return std::nullopt;

    OperatingPlan plan;
    plan.vdd = vdd;
    plan.weightLevel = *weight_level;
    plan.inputLevel = *input_level;
    plan.vddvWeights = explorer_.boostedVoltage(vdd, plan.weightLevel);
    plan.vddvInputs = explorer_.boostedVoltage(vdd, plan.inputLevel);
    plan.targetAccuracy = target;
    plan.plannedAccuracy = oracle(plan.vddvWeights);
    if (rec != nullptr) {
        plan.recoveryMode = rec->mode;
        plan.recoveryComputeOps = rec->extraComputeOps;
        plan.recoveryInputAccesses = rec->extraInputAccesses;
    }
    // The recovery path's extra work joins the inference streams: its
    // operand traffic runs at the input level (its activations live in
    // the boosted input memory) and its MACs at the logic rail.
    const std::uint64_t input_accesses =
        footprint_.inputAccesses + footprint_.psumAccesses +
        plan.recoveryInputAccesses;
    const std::uint64_t compute_ops =
        footprint_.computeOps + plan.recoveryComputeOps;

    double replay_mult = 1.0;
    if (v_logic.value() > 0.0) {
        if (!timingModel_)
            fatal("OperatingPointPlanner::planAt: vLogicGrid is empty, "
                  "no timing model to evaluate V_logic = ",
                  v_logic.value());
        if (vdd < v_logic)
            return std::nullopt; // underscaling only
        const Second period(1.0 / cfg_.datapathClock.value());
        const PlannedTiming t = predictTiming(
            *timingModel_, cfg_.replayPolicy, v_logic, period);
        if (t.corruptedRate > cfg_.maxCorruptedRate)
            return std::nullopt;
        plan.vLogic = v_logic;
        plan.replayRate = t.replayRate;
        plan.bubbleRate = t.bubbleRate;
        plan.corruptedRate = t.corruptedRate;
        replay_mult = 1.0 + t.replayRate;
    }

    // Planned dynamic energy of one inference's streams. Underscaled
    // rails move the MAC datapath (and its replays — recovery MACs
    // replay like any other op) to their own rail.
    auto stream_energy = [&](std::uint64_t in_acc,
                             std::uint64_t ops) -> Joule {
        if (v_logic.value() > 0.0) {
            return explorer_.supply()
                       .boostedDynamicMulti(
                           {{footprint_.weightAccesses,
                             plan.weightLevel},
                            {in_acc, plan.inputLevel}},
                           0, vdd)
                       .total() +
                   explorer_.supply().energyModel().peOpEnergy(
                       v_logic) *
                       (static_cast<double>(ops) * replay_mult);
        }
        return explorer_.supply()
            .boostedDynamicMulti({{footprint_.weightAccesses,
                                   plan.weightLevel},
                                  {in_acc, plan.inputLevel}},
                                 ops, vdd)
            .total();
    };
    plan.energyPerInference = stream_energy(input_accesses, compute_ops);
    if (rec != nullptr) {
        const Joule base = stream_energy(
            footprint_.inputAccesses + footprint_.psumAccesses,
            footprint_.computeOps);
        plan.recoveryEnergy = Joule(plan.energyPerInference.value() -
                                    base.value());
    }
    return plan;
}

const OperatingPlan &
OperatingPointPlanner::planFor(const std::string &tenant, SloClass slo)
{
    const auto &ladder = ladder_[static_cast<std::size_t>(slo)];
    int step = 0;
    if (auto it = tenants_.find(tenant); it != tenants_.end())
        step = it->second.step;
    step = std::min(step, static_cast<int>(ladder.size()) - 1);
    return ladder[static_cast<std::size_t>(step)];
}

void
OperatingPointPlanner::observeErrorRate(const std::string &tenant,
                                        double error_rate)
{
    if (error_rate < 0.0)
        fatal("OperatingPointPlanner: negative error rate ", error_rate);
    TenantState &state = tenants_[tenant];
    if (!state.seeded) {
        state.ewma = error_rate;
        state.seeded = true;
    } else {
        state.ewma = cfg_.ewmaAlpha * error_rate +
                     (1.0 - cfg_.ewmaAlpha) * state.ewma;
    }
    if (state.ewma > cfg_.stepUpThreshold && state.step < maxStep_) {
        ++state.step;
        // The new rung changes the error regime; restart the average so
        // stale samples from the old rung cannot trigger a second step.
        state.ewma = 0.0;
    } else if (state.ewma < cfg_.stepDownThreshold && state.step > 0) {
        --state.step;
    }
}

double
OperatingPointPlanner::targetAccuracy(SloClass slo) const
{
    return faultFreeAccuracy_ *
           cfg_.accuracyFraction[static_cast<std::size_t>(slo)];
}

int
OperatingPointPlanner::tenantStep(const std::string &tenant) const
{
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.step;
}

double
OperatingPointPlanner::tenantEwma(const std::string &tenant) const
{
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0.0 : it->second.ewma;
}

std::size_t
OperatingPointPlanner::ladderSize(SloClass slo) const
{
    return ladder_[static_cast<std::size_t>(slo)].size();
}

} // namespace vboost::serve
