/**
 * @file
 * Open-loop Poisson load generator (DESIGN.md §9): produces a
 * deterministic request trace — exponential inter-arrival times on the
 * virtual clock, tenants drawn by traffic share, sample indices drawn
 * uniformly from the server's sample pool — from a single seed, so the
 * same trace can be replayed against any server configuration and any
 * worker count.
 */

#ifndef VBOOST_SERVE_TRACE_HPP
#define VBOOST_SERVE_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace vboost::serve {

/** One traffic source in the generated mix. */
struct TenantSpec
{
    std::string name;
    SloClass slo = SloClass::Silver;
    /** Relative traffic share (normalized over the mix). */
    double trafficShare = 1.0;
};

/** Trace-generation parameters. */
struct TraceConfig
{
    /** Mean arrival rate in requests per microtick (Poisson process).
     *  At 1e6 ticks/s, 0.001 is 1000 requests per second. */
    double requestsPerTick = 0.001;
    /** Requests to generate. */
    std::size_t numRequests = 256;
    /** RNG seed; the whole trace is a pure function of this config. */
    std::uint64_t seed = 42;
    /** Traffic mix (must be non-empty, shares > 0). */
    std::vector<TenantSpec> tenants;
    /** Size of the sample pool request indices are drawn from. */
    std::size_t samplePoolSize = 1;
};

/**
 * Generate an open-loop Poisson arrival trace. Arrival ticks are
 * nondecreasing; request ids are the trace positions.
 */
std::vector<InferenceRequest> generatePoissonTrace(const TraceConfig &cfg);

/** A named traffic mix (the unit the serving benches sweep over). */
struct TenantMix
{
    std::string name;
    std::vector<TenantSpec> tenants;
};

/**
 * The canonical serving mixes shared by bench_serve and
 * bench_serve_cluster: "gold" (one Gold tenant), "mixed" (Gold /
 * Silver / Bronze at 30/40/30) and "bronze" (one Bronze tenant).
 * Centralised here so every bench replays byte-identical traces for a
 * given (mix, load, seed) — the seed-stable digests the determinism
 * gates compare depend on it.
 */
std::vector<TenantMix> standardServeMixes();

/**
 * A scaled "million-user" mix: `num_tenants` tenants named
 * tenant-0000.., SLO classes assigned round-robin Gold/Silver/Bronze,
 * traffic shares Zipf-distributed (share of rank i is 1/(i+1)) the way
 * a large tenant population concentrates load on a heavy head. A pure
 * function of `num_tenants` — no RNG — so trace digests stay
 * seed-stable.
 *
 * @param num_tenants number of tenants (>= 1).
 */
TenantMix scaledTenantMix(std::size_t num_tenants);

} // namespace vboost::serve

#endif // VBOOST_SERVE_TRACE_HPP
