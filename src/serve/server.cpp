#include "serve/server.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/scope.hpp"

namespace vboost::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
hashU64(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void
hashDouble(std::uint64_t &h, double d)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    hashU64(h, bits);
}

void
hashString(std::uint64_t &h, const std::string &s)
{
    hashU64(h, s.size());
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

void
hashTenant(std::uint64_t &h, const TenantStats &t)
{
    hashU64(h, t.requests);
    hashU64(h, t.admitted);
    hashU64(h, t.shedQueueFull);
    hashU64(h, t.shedTenantQuota);
    hashU64(h, t.batches);
    hashU64(h, t.inferences);
    hashU64(h, t.correct);
    hashU64(h, t.retries);
    hashU64(h, t.escalations);
    hashU64(h, t.quarantines);
    hashU64(h, t.uncorrected);
    hashDouble(h, t.energyPj);
    hashU64(h, t.queueWaitTicksSum);
    hashU64(h, t.latencyTicksSum);
    hashU64(h, t.maxLatencyTicks);
    hashU64(h, static_cast<std::uint64_t>(t.finalVddStep));
}

} // namespace

void
ServerConfig::validate() const
{
    if (queueCapacity == 0)
        fatal("ServerConfig: queueCapacity must be > 0");
    if (workerSlots < 1)
        fatal("ServerConfig: workerSlots must be >= 1, got ",
              workerSlots);
    if (feedbackInterval < 1)
        fatal("ServerConfig: feedbackInterval must be >= 1, got ",
              feedbackInterval);
    if (ticksPerSecond <= 0.0)
        fatal("ServerConfig: ticksPerSecond must be > 0");
    policy.validate(chip.boostLevels);
}

std::uint64_t
ServerStats::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    hashTenant(h, total);
    hashU64(h, perTenant.size());
    for (const auto &[name, tenant] : perTenant) {
        hashString(h, name);
        hashTenant(h, tenant);
    }
    hashDouble(h, meanBatchSize);
    hashDouble(h, p50LatencyTicks);
    hashDouble(h, p95LatencyTicks);
    hashDouble(h, accuracy);
    return h;
}

InferenceServer::InferenceServer(const core::SimContext &ctx,
                                 dnn::Network &net,
                                 const dnn::Dataset &pool,
                                 accel::LayerActivity per_inference,
                                 OperatingPointPlanner planner,
                                 ServerConfig cfg)
    : ctx_(ctx),
      net_(net),
      pool_(pool),
      perInference_(per_inference),
      planner_(std::move(planner)),
      cfg_(std::move(cfg)),
      perf_(ctx_, cfg_.chip.weightBanks, cfg_.perf),
      failure_(ctx_.failure),
      deviceMap_(cfg_.seed, 0)
{
    cfg_.validate();
    if (pool_.size() == 0)
        fatal("InferenceServer: empty sample pool");
    if (perInference_.macs == 0)
        fatal("InferenceServer: per-inference activity has no MACs");
    slotFreeAt_.assign(static_cast<std::size_t>(cfg_.workerSlots), 0);
}

void
InferenceServer::resetWorkerBacklog()
{
    slotFreeAt_.assign(static_cast<std::size_t>(cfg_.workerSlots), 0);
}

void
InferenceServer::attachObservability(obs::Observability *o,
                                     std::uint64_t trace_pid,
                                     obs::Labels labels)
{
    obs_ = o;
    obsPid_ = trace_pid;
    obsLabels_ = std::move(labels);
}

obs::Labels
InferenceServer::withBase(obs::Labels extra) const
{
    // insert() keeps existing keys, so the explicit labels win over
    // the attached base labels.
    extra.insert(obsLabels_.begin(), obsLabels_.end());
    return extra;
}

std::vector<FormedBatch>
InferenceServer::formBatches(const std::vector<InferenceRequest> &trace,
                             std::vector<RequestOutcome> &outcomes)
{
    BoundedRequestQueue queue(cfg_.queueCapacity, cfg_.perTenantQueueCap);
    DynamicBatcher batcher(cfg_.batcher);
    std::vector<FormedBatch> formed;

    // Queue-depth histogram, sampled once per arrival on this serial
    // path (§11): the distribution of backlog the trace produced.
    std::optional<obs::Histogram> depth;
    if (obs_) {
        const double cap = static_cast<double>(
            std::max<std::size_t>(2, cfg_.queueCapacity));
        depth = obs_->metrics.histogram(
            "serve.queue.depth",
            obs::linearBounds(0.0, cap,
                              std::min(17, static_cast<int>(cap) + 1)),
            withBase({}));
    }

    auto closeInto = [&](std::vector<FormedBatch> &&batches) {
        for (auto &batch : batches) {
            queue.release(batch.tenant, batch.requests.size());
            formed.push_back(std::move(batch));
        }
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const InferenceRequest &req = trace[i];
        // Groups whose wait deadline passed close *before* this arrival
        // is admitted, freeing their queue occupancy first.
        closeInto(batcher.closeDue(req.arrivalTick));

        RequestOutcome &out = outcomes[i];
        out.id = req.id;
        out.tenant = req.tenant;
        out.slo = req.slo;
        out.arrivalTick = req.arrivalTick;

        const AdmissionDecision decision = queue.tryAdmit(req);
        out.admitted = decision.admitted;
        if (!decision.admitted) {
            out.shedReason = decision.reason;
        } else if (auto full = batcher.add(req)) {
            queue.release(full->tenant, full->requests.size());
            formed.push_back(std::move(*full));
        }
        if (depth)
            depth->observe(static_cast<double>(queue.occupancy()));
    }
    closeInto(batcher.closeDue(DynamicBatcher::kNever));
    return formed;
}

void
InferenceServer::executeBatch(const FormedBatch &batch, BatchRecord &rec,
                              WorkerScratch &scratch)
{
    if (!scratch.chip)
        scratch.chip = std::make_unique<accel::DanteChip>(
            cfg_.chip, ctx_.tech, ctx_.failure);
    if (!scratch.net)
        scratch.net = std::make_unique<dnn::Network>(net_.clone());
    // Per-batch energy must not depend on which batches this slot ran
    // before, so the bank counters restart from zero every time.
    scratch.chip->resetCounters();

    resilience::ResiliencePolicy policy = cfg_.policy;
    policy.startLevel = rec.plan.weightLevel;
    resilience::ResilientMemory rmem(scratch.chip->weightMemory(), ctx_,
                                     policy);

    // Counter-split streams keyed by the batch sequence number (§7):
    // identical regardless of which thread/slot executes the batch.
    const Rng base(cfg_.seed);
    rmem.reseed(base.split(1'000'000 + 2 * batch.seq));
    rec.residualFlips = fi::corruptNetworkResilient(
        *scratch.net, net_, rmem, rec.plan.vdd, deviceMap_);

    std::vector<std::size_t> samples;
    samples.reserve(batch.requests.size());
    for (const InferenceRequest &req : batch.requests)
        samples.push_back(req.sample);
    const dnn::Dataset inputs = pool_.gather(samples);

    Rng input_rng = base.split(1'000'001 + 2 * batch.seq);
    const dnn::Tensor x = fi::corruptInputs(
        inputs.images, deviceMap_, failure_.rate(rec.plan.vddvInputs),
        cfg_.inputFlipProb, cfg_.layout, input_rng);

    rec.predictions = scratch.net->predict(x);
    rec.correct.resize(rec.predictions.size());
    for (std::size_t j = 0; j < rec.predictions.size(); ++j)
        rec.correct[j] = rec.predictions[j] == inputs.labels[j];

    rec.resilience = rmem.snapshot();
    const resilience::ResilienceStats &rs = rec.resilience;
    rec.errorRate =
        rs.reads ? static_cast<double>(rs.reads - rs.cleanReads) /
                       static_cast<double>(rs.reads)
                 : 0.0;

    accel::RetryOverhead overhead;
    if (rs.reads > 0) {
        overhead.retryRate = static_cast<double>(rs.retries) /
                             static_cast<double>(rs.reads);
        overhead.escalatedFraction =
            static_cast<double>(rs.escalations) /
            static_cast<double>(rs.reads + rs.retries);
        overhead.escalatedLevel =
            std::min(rec.plan.weightLevel + 1, cfg_.chip.boostLevels);
    }

    // Weights are staged through the SRAM once per batch; activations
    // and partial sums scale with the batch size.
    const auto b = static_cast<std::uint64_t>(batch.requests.size());
    accel::LayerActivity activity;
    activity.macs = perInference_.macs * b;
    activity.weightAccesses = perInference_.weightAccesses;
    activity.inputAccesses = perInference_.inputAccesses * b;
    activity.psumAccesses = perInference_.psumAccesses * b;

    // The planner's 2-D point carries the datapath perturbation: a
    // zero vLogic with unit stretch degenerates to the 1-D evaluation.
    accel::TimingOverhead timing;
    timing.replayRate = rec.plan.replayRate;
    timing.bubbleRate = rec.plan.bubbleRate;
    timing.vLogic = rec.plan.vLogic;
    timing.clockStretch = rec.plan.clockStretch;

    const accel::PerfResult perf =
        perf_.evaluate(activity, rec.plan.vdd, rec.plan.weightLevel,
                       accel::SupplyMode::Boosted, overhead, timing);
    rec.serviceTicks = std::max<Tick>(
        1, static_cast<Tick>(
               std::ceil(perf.runtime.value() * cfg_.ticksPerSecond)));
    rec.modeledEnergy = perf.totalEnergy;
    rec.sramEnergy = rmem.totalAccessEnergy();

    // Per-bank boost-energy attribution. The counters restarted from
    // zero above, so this is the batch's own spend — a deterministic
    // function of the batch seq, captured here and published serially.
    const sram::BankedMemory &wmem = scratch.chip->weightMemory();
    rec.bankBoostEnergyJ.resize(static_cast<std::size_t>(wmem.banks()));
    for (int bank = 0; bank < wmem.banks(); ++bank) {
        rec.bankBoostEnergyJ[static_cast<std::size_t>(bank)] =
            wmem.bankCounters(bank).boostEnergy.value();
    }
}

void
InferenceServer::assignSlots(std::vector<BatchRecord> &records)
{
    // FCFS over virtual slots in formation order: earliest-free slot
    // wins, ties to the lowest index. A pure function of the service
    // times, so timing never depends on the execution thread count.
    // Slot availability carries over from previous runs (a saturated
    // device stays saturated across back-to-back traces) until
    // resetWorkerBacklog().
    for (BatchRecord &rec : records) {
        std::size_t slot = 0;
        for (std::size_t s = 1; s < slotFreeAt_.size(); ++s) {
            if (slotFreeAt_[s] < slotFreeAt_[slot])
                slot = s;
        }
        rec.slot = static_cast<int>(slot);
        rec.startTick = std::max(rec.formedTick, slotFreeAt_[slot]);
        rec.completionTick = rec.startTick + rec.serviceTicks;
        slotFreeAt_[slot] = rec.completionTick;
    }
}

ServerStats
InferenceServer::aggregate(const std::vector<RequestOutcome> &outcomes,
                           const std::vector<BatchRecord> &records)
{
    ServerStats stats;
    TenantStats &tot = stats.total;
    std::vector<double> latencies;

    for (const RequestOutcome &out : outcomes) {
        TenantStats &tenant = stats.perTenant[out.tenant];
        ++tenant.requests;
        ++tot.requests;
        if (!out.admitted) {
            if (out.shedReason == ShedReason::QueueFull) {
                ++tenant.shedQueueFull;
                ++tot.shedQueueFull;
            } else {
                ++tenant.shedTenantQuota;
                ++tot.shedTenantQuota;
            }
            continue;
        }
        ++tenant.admitted;
        ++tot.admitted;
        if (out.correct) {
            ++tenant.correct;
            ++tot.correct;
        }
        const Tick wait = out.queueWaitTicks();
        const Tick latency = out.latencyTicks();
        tenant.queueWaitTicksSum += wait;
        tot.queueWaitTicksSum += wait;
        tenant.latencyTicksSum += latency;
        tot.latencyTicksSum += latency;
        tenant.maxLatencyTicks = std::max(tenant.maxLatencyTicks, latency);
        tot.maxLatencyTicks = std::max(tot.maxLatencyTicks, latency);
        latencies.push_back(static_cast<double>(latency));
    }

    for (const BatchRecord &rec : records) {
        TenantStats &tenant = stats.perTenant[rec.tenant];
        ++tenant.batches;
        ++tot.batches;
        tenant.inferences += rec.size;
        tot.inferences += rec.size;
        tenant.retries += rec.resilience.retries;
        tot.retries += rec.resilience.retries;
        tenant.escalations += rec.resilience.escalations;
        tot.escalations += rec.resilience.escalations;
        tenant.quarantines += rec.resilience.quarantines;
        tot.quarantines += rec.resilience.quarantines;
        tenant.uncorrected += rec.resilience.uncorrected;
        tot.uncorrected += rec.resilience.uncorrected;
        const double pj = rec.modeledEnergy.value() * 1e12;
        tenant.energyPj += pj; // vblint: assoc-ok(serial aggregation in batch seq order)
        tot.energyPj += pj;    // vblint: assoc-ok(serial aggregation in batch seq order)
    }

    for (auto &[name, tenant] : stats.perTenant)
        tenant.finalVddStep = planner_.tenantStep(name);

    stats.meanBatchSize =
        tot.batches ? static_cast<double>(tot.inferences) /
                          static_cast<double>(tot.batches)
                    : 0.0;
    if (!latencies.empty()) {
        stats.p50LatencyTicks = percentile(latencies, 50.0);
        stats.p95LatencyTicks = percentile(latencies, 95.0);
    }
    stats.accuracy = tot.inferences
                         ? static_cast<double>(tot.correct) /
                               static_cast<double>(tot.inferences)
                         : 0.0;
    return stats;
}

ServeResult
InferenceServer::run(const std::vector<InferenceRequest> &trace)
{
    // Audited for VB002: this table is keyed-lookup only (emplace +
    // .at below) and is never iterated, so hash order cannot leak into
    // outcomes; unordered stays for O(1) lookups on the hot join path.
    std::unordered_map<std::uint64_t, std::size_t> id_to_index;
    id_to_index.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i > 0 && trace[i].arrivalTick < trace[i - 1].arrivalTick)
            fatal("InferenceServer::run: arrival ticks must be "
                  "nondecreasing (trace index ", i, ")");
        if (trace[i].sample >= pool_.size())
            fatal("InferenceServer::run: sample index ", trace[i].sample,
                  " outside the pool of ", pool_.size());
        if (!id_to_index.emplace(trace[i].id, i).second)
            fatal("InferenceServer::run: duplicate request id ",
                  trace[i].id);
    }

    ServeResult result;
    result.outcomes.resize(trace.size());
    std::vector<FormedBatch> formed;
    {
        // Phase timers run on the work-unit clock (requests, batches,
        // records): deterministic attribution, not wall time.
        std::optional<obs::ScopeTimer> form_timer;
        if (obs_) {
            form_timer.emplace(obs_->metrics, "serve.phase.form",
                               workClock_, withBase({}));
        }
        formed = formBatches(trace, result.outcomes);
        workClock_.advance(trace.size());
    }
    for (std::size_t k = 0; k < formed.size(); ++k) {
        if (formed[k].seq != k)
            panic("InferenceServer::run: batch sequence ", formed[k].seq,
                  " out of order at position ", k);
    }

    std::vector<BatchRecord> records(formed.size());
    const unsigned num_threads = ThreadPool::resolveThreads(cfg_.numThreads);
    if (scratch_.size() < num_threads)
        scratch_.resize(num_threads);

    // Epoch execution: plans freeze serially, batches run in parallel,
    // feedback applies serially in batch order — the planner never
    // observes a scheduling-dependent interleaving.
    {
        std::optional<obs::ScopeTimer> exec_timer;
        if (obs_) {
            exec_timer.emplace(obs_->metrics, "serve.phase.execute",
                               workClock_, withBase({}));
        }
        const auto interval =
            static_cast<std::size_t>(cfg_.feedbackInterval);
        for (std::size_t begin = 0; begin < formed.size();
             begin += interval) {
            const std::size_t end =
                std::min(begin + interval, formed.size());
            for (std::size_t k = begin; k < end; ++k) {
                records[k].seq = formed[k].seq;
                records[k].tenant = formed[k].tenant;
                records[k].slo = formed[k].slo;
                records[k].size = formed[k].requests.size();
                records[k].formedTick = formed[k].formedTick;
                records[k].plan =
                    planner_.planFor(formed[k].tenant, formed[k].slo);
            }
            parallelFor(end - begin, cfg_.numThreads,
                        // vblint: allow(VB009, batch i writes only records[begin+i]; scratch is slot-exclusive)
                        [&](std::size_t i, unsigned slot) {
                            executeBatch(formed[begin + i],
                                         records[begin + i],
                                         scratch_[slot]);
                        });
            for (std::size_t k = begin; k < end; ++k)
                planner_.observeErrorRate(records[k].tenant,
                                          records[k].errorRate);
            workClock_.advance(end - begin);
        }
    }

    assignSlots(records);

    for (const BatchRecord &rec : records) {
        const FormedBatch &batch = formed[rec.seq];
        for (std::size_t j = 0; j < batch.requests.size(); ++j) {
            RequestOutcome &out =
                result.outcomes[id_to_index.at(batch.requests[j].id)];
            out.batchSeq = rec.seq;
            out.predictedClass = rec.predictions[j];
            out.correct = rec.correct[j];
            out.formedTick = rec.formedTick;
            out.startTick = rec.startTick;
            out.completionTick = rec.completionTick;
            out.energyPj = rec.modeledEnergy.value() * 1e12 /
                           static_cast<double>(rec.size);
        }
    }

    {
        std::optional<obs::ScopeTimer> agg_timer;
        if (obs_) {
            agg_timer.emplace(obs_->metrics, "serve.phase.aggregate",
                              workClock_, withBase({}));
        }
        result.batches = std::move(records);
        result.stats = aggregate(result.outcomes, result.batches);
        workClock_.advance(result.batches.size());
    }
    publishObservability(result);
    return result;
}

void
InferenceServer::publishObservability(const ServeResult &result)
{
    if (!obs_)
        return;
    obs::MetricsRegistry &reg = obs_->metrics;
    obs::Tracer &tracer = obs_->trace;
    const obs::Labels base = withBase({});

    // Trace rows: one per virtual worker slot plus an admission row
    // for shed markers.
    for (int s = 0; s < cfg_.workerSlots; ++s) {
        tracer.setThreadName(obsPid_, static_cast<std::uint64_t>(s),
                             "slot " + std::to_string(s));
    }
    const auto admission_tid =
        static_cast<std::uint64_t>(cfg_.workerSlots);
    tracer.setThreadName(obsPid_, admission_tid, "admission");

    obs::Counter requests = reg.counter("serve.requests", base);
    obs::Counter admitted = reg.counter("serve.admitted", base);
    obs::Counter shed_queue_full =
        reg.counter("serve.shed", withBase({{"reason", "queue_full"}}));
    obs::Counter shed_tenant_quota =
        reg.counter("serve.shed", withBase({{"reason", "tenant_quota"}}));

    // Latency buckets: 16 us to ~134 s in powers of two, shared by the
    // end-to-end latency and the queue-wait component.
    const std::vector<double> latency_bounds =
        obs::exponentialBounds(16.0, 2.0, 24);
    std::vector<obs::Histogram> latency_hists;
    std::vector<obs::Histogram> wait_hists;
    for (int s = 0; s < kNumSloClasses; ++s) {
        const obs::Labels slo_labels =
            withBase({{"slo", toString(static_cast<SloClass>(s))}});
        latency_hists.push_back(reg.histogram("serve.latency.ticks",
                                              latency_bounds, slo_labels));
        wait_hists.push_back(reg.histogram("serve.queue.wait_ticks",
                                           latency_bounds, slo_labels));
    }

    for (const RequestOutcome &out : result.outcomes) {
        requests.add(1);
        if (!out.admitted) {
            if (out.shedReason == ShedReason::QueueFull) {
                shed_queue_full.add(1);
                tracer.instant(obsPid_, admission_tid, "shed.queue_full",
                               out.arrivalTick, {},
                               {{"tenant", out.tenant}});
            } else {
                shed_tenant_quota.add(1);
                tracer.instant(obsPid_, admission_tid, "shed.tenant_quota",
                               out.arrivalTick, {},
                               {{"tenant", out.tenant}});
            }
            continue;
        }
        admitted.add(1);
        const auto s = static_cast<std::size_t>(out.slo);
        latency_hists[s].observe(static_cast<double>(out.latencyTicks()));
        wait_hists[s].observe(static_cast<double>(out.queueWaitTicks()));
    }

    // Batch-level attribution, in formation (seq) order.
    const double max_batch =
        static_cast<double>(std::max(2, cfg_.batcher.maxBatchSize));
    obs::Histogram batch_size = reg.histogram(
        "serve.batch.size",
        obs::linearBounds(1.0, max_batch,
                          std::min(16, static_cast<int>(max_batch))),
        base);
    obs::Counter batches = reg.counter("serve.batches", base);
    obs::Counter retries = reg.counter("resil.retry.count", base);
    obs::Counter escalations = reg.counter("resil.escalation.count", base);
    obs::Counter quarantines = reg.counter("resil.quarantine.count", base);
    obs::Counter uncorrected = reg.counter("resil.uncorrected.count", base);
    obs::Counter residual_flips =
        reg.counter("serve.residual_flips", base);
    obs::Sum retry_energy = reg.sum("resil.retry.energy_j", base);
    obs::Histogram bank_boost = reg.histogram(
        "resil.bank.boost_energy_j", obs::exponentialBounds(1e-15, 10.0, 10),
        base);

    obs::EnergyScope sram_energy(reg, "serve.sram.energy_j", base);
    std::array<std::optional<obs::EnergyScope>, kNumSloClasses> slo_energy;
    for (int s = 0; s < kNumSloClasses; ++s) {
        slo_energy[static_cast<std::size_t>(s)].emplace(
            reg, "serve.energy_j",
            withBase({{"slo", toString(static_cast<SloClass>(s))}}));
    }

    for (const BatchRecord &rec : result.batches) {
        batches.add(1);
        batch_size.observe(static_cast<double>(rec.size));
        retries.add(rec.resilience.retries);
        escalations.add(rec.resilience.escalations);
        quarantines.add(rec.resilience.quarantines);
        uncorrected.add(rec.resilience.uncorrected);
        residual_flips.add(rec.residualFlips);
        retry_energy.add(rec.resilience.retryEnergy.value());
        sram_energy.add(rec.sramEnergy);
        slo_energy[static_cast<std::size_t>(rec.slo)]->add(
            rec.modeledEnergy);
        for (const double e : rec.bankBoostEnergyJ)
            bank_boost.observe(e);

        // Two spans per batch on the slot's trace row: the queue wait
        // and the execution window assigned by the FCFS post-pass.
        const auto tid = static_cast<std::uint64_t>(rec.slot);
        if (rec.startTick > rec.formedTick) {
            tracer.complete(obsPid_, tid, "wait", rec.formedTick,
                            rec.startTick - rec.formedTick, {},
                            {{"tenant", rec.tenant}});
        }
        tracer.complete(
            obsPid_, tid,
            rec.tenant + "/" + std::string(toString(rec.slo)),
            rec.startTick, rec.serviceTicks,
            {{"batch", static_cast<double>(rec.seq)},
             {"energy_pj", rec.modeledEnergy.value() * 1e12},
             {"requests", static_cast<double>(rec.size)},
             {"retries", static_cast<double>(rec.resilience.retries)}});
    }

    // Run-level gauges from the aggregate snapshot (reconcile with the
    // ServerStats the benches print).
    reg.gauge("serve.latency.p50_ticks", base)
        .set(result.stats.p50LatencyTicks);
    reg.gauge("serve.latency.p95_ticks", base)
        .set(result.stats.p95LatencyTicks);
    reg.gauge("serve.batch.mean_size", base)
        .set(result.stats.meanBatchSize);
    reg.gauge("serve.accuracy", base).set(result.stats.accuracy);
}

} // namespace vboost::serve
