#include "serve/batcher.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vboost::serve {

DynamicBatcher::DynamicBatcher(BatcherConfig cfg) : cfg_(cfg)
{
    if (cfg_.maxBatchSize < 1)
        fatal("DynamicBatcher: maxBatchSize must be >= 1, got ",
              cfg_.maxBatchSize);
}

FormedBatch
DynamicBatcher::close(const GroupKey &key, Group &&group, Tick formed)
{
    FormedBatch batch;
    batch.seq = nextSeq_++;
    batch.tenant = key.first;
    batch.slo = static_cast<SloClass>(key.second);
    batch.requests = std::move(group.requests);
    batch.formedTick = formed;
    pending_ -= batch.requests.size();
    return batch;
}

std::optional<FormedBatch>
DynamicBatcher::add(const InferenceRequest &req)
{
    GroupKey key{req.tenant, static_cast<int>(req.slo)};
    Group &group = groups_[key];
    if (group.requests.empty())
        group.oldestArrival = req.arrivalTick;
    group.requests.push_back(req);
    ++pending_;
    if (static_cast<int>(group.requests.size()) < cfg_.maxBatchSize)
        return std::nullopt;
    FormedBatch batch = close(key, std::move(group), req.arrivalTick);
    groups_.erase(key);
    return batch;
}

std::vector<FormedBatch>
DynamicBatcher::closeDue(Tick now)
{
    // Collect due groups first, then close in (deadline, key) order so
    // batch sequence numbers do not depend on map insertion history.
    std::vector<std::pair<Tick, GroupKey>> due;
    for (const auto &[key, group] : groups_) {
        Tick deadline = group.oldestArrival + cfg_.maxWaitTicks;
        if (deadline <= now || now == kNever)
            due.emplace_back(now == kNever
                                 ? std::min(deadline, kNever)
                                 : deadline,
                             key);
    }
    std::sort(due.begin(), due.end());

    std::vector<FormedBatch> closed;
    closed.reserve(due.size());
    for (const auto &[deadline, key] : due) {
        auto it = groups_.find(key);
        closed.push_back(close(key, std::move(it->second), deadline));
        groups_.erase(it);
    }
    return closed;
}

std::optional<Tick>
DynamicBatcher::nextDeadline() const
{
    std::optional<Tick> earliest;
    for (const auto &[key, group] : groups_) {
        Tick deadline = group.oldestArrival + cfg_.maxWaitTicks;
        if (!earliest || deadline < *earliest)
            earliest = deadline;
    }
    return earliest;
}

} // namespace vboost::serve
