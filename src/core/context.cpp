#include "core/context.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vboost::core {

SimContext
SimContext::standard()
{
    return SimContext{circuit::TechnologyParams::default14nm(),
                      sram::FailureRateParams{},
                      circuit::BoosterDesign::standardConfig()};
}

int
BoostConfiguration::maxLevel() const
{
    if (layerLevels.empty())
        return 0;
    return *std::max_element(layerLevels.begin(), layerLevels.end());
}

std::vector<BoostConfiguration>
BoostConfiguration::table2(int num_layers, int levels)
{
    if (num_layers < 1 || levels < 1)
        fatal("BoostConfiguration::table2: invalid dimensions");

    std::vector<BoostConfiguration> out;
    const auto n = static_cast<std::size_t>(num_layers);
    for (int p = 1; p <= levels; ++p) {
        BoostConfiguration c;
        c.name = "Boost_Vddv" + std::to_string(p);
        c.layerLevels.assign(n, p);
        out.push_back(std::move(c));
    }
    // Boost_diff1: increasing boost with layer depth; the deepest
    // layer (closest to the output) gets the highest level.
    {
        BoostConfiguration c;
        c.name = "Boost_diff1";
        for (int l = 0; l < num_layers; ++l) {
            const int level = levels - (num_layers - 1 - l);
            c.layerLevels.push_back(std::clamp(level, 1, levels));
        }
        out.push_back(std::move(c));
    }
    // Boost_diff2: decreasing boost with depth; the first layer gets
    // the highest level.
    {
        BoostConfiguration c;
        c.name = "Boost_diff2";
        for (int l = 0; l < num_layers; ++l) {
            const int level = levels - l;
            c.layerLevels.push_back(std::clamp(level, 1, levels));
        }
        out.push_back(std::move(c));
    }
    return out;
}

} // namespace vboost::core
