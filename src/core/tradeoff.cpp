#include "core/tradeoff.hpp"

#include "common/logging.hpp"

namespace vboost::core {

TradeoffExplorer::TradeoffExplorer(const SimContext &ctx, int num_banks)
    : supply_(ctx.tech, ctx.design, num_banks)
{
}

Volt
TradeoffExplorer::boostedVoltage(Volt vdd, int level) const
{
    return supply_.boostedVoltage(vdd, level);
}

std::optional<int>
TradeoffExplorer::minimalLevelForAccuracy(Volt vdd, double target,
                                          const AccuracyFn &accuracy) const
{
    if (!accuracy)
        fatal("TradeoffExplorer: accuracy function required");
    for (int level = 0; level <= levels(); ++level) {
        if (accuracy(supply_.boostedVoltage(vdd, level)) >= target)
            return level;
    }
    return std::nullopt;
}

std::optional<int>
TradeoffExplorer::minimalLevelReaching(Volt vdd, Volt v_target) const
{
    for (int level = 0; level <= levels(); ++level) {
        if (supply_.boostedVoltage(vdd, level) >= v_target)
            return level;
    }
    return std::nullopt;
}

std::optional<OperatingPoint>
TradeoffExplorer::isoAccuracyPoint(Volt vdd, double target,
                                   const AccuracyFn &accuracy,
                                   const energy::Workload &workload) const
{
    const auto level = minimalLevelForAccuracy(vdd, target, accuracy);
    if (!level)
        return std::nullopt;

    OperatingPoint op;
    op.vdd = vdd;
    op.level = *level;
    op.vddv = supply_.boostedVoltage(vdd, *level);
    op.accuracy = accuracy(op.vddv);
    op.boostedEnergy =
        supply_.boostedDynamic(workload, vdd, *level).total();
    // The "equivalent comparison point" of Sec. 2: an LDO-based dual
    // rail with the memory held at the same Vddv and logic at Vdd.
    op.dualEnergy =
        supply_.dualSupplyDynamic(workload, op.vddv, vdd).total();
    return op;
}

} // namespace vboost::core
