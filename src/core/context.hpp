/**
 * @file
 * Top-level simulation context: one bundle of the technology,
 * failure-rate and booster-design choices shared by a whole study, and
 * the Table-2 boost configurations of the paper's FC-DNN evaluation.
 */

#ifndef VBOOST_CORE_CONTEXT_HPP
#define VBOOST_CORE_CONTEXT_HPP

#include <string>
#include <vector>

#include "circuit/booster.hpp"
#include "circuit/tech.hpp"
#include "sram/failure_model.hpp"

namespace vboost::core {

/** Shared configuration for a simulation study. */
struct SimContext
{
    circuit::TechnologyParams tech;
    sram::FailureRateParams failure;
    circuit::BoosterDesign design;

    /** The paper's standard setup: default 14nm parameters, the
     *  calibrated failure fit, and the 4-level standard booster. */
    static SimContext standard();
};

/**
 * A named per-layer boost assignment (paper Table 2): which boost
 * level each weight layer uses, plus the input-memory level.
 */
struct BoostConfiguration
{
    std::string name;
    /** Boost level per weight layer, in layer order. */
    std::vector<int> layerLevels;
    /** Boost level for the input memory. */
    int inputLevel = 1;

    /** Highest level used by any weight layer. */
    int maxLevel() const;

    /**
     * The paper's Table 2 for a network with `num_layers` weight
     * layers and `levels` programmable levels: uniform configurations
     * Boost_Vddv1..Boost_VddvP, plus Boost_diff1 (deeper layers boosted
     * higher) and Boost_diff2 (first layer boosted highest).
     */
    static std::vector<BoostConfiguration> table2(int num_layers,
                                                  int levels);
};

} // namespace vboost::core

#endif // VBOOST_CORE_CONTEXT_HPP
