/**
 * @file
 * The iso-accuracy controller behind the paper's Fig. 15: given a
 * target accuracy, choose — per supply voltage — the cheapest boost
 * level whose boosted SRAM voltage still meets the target, then
 * compare the resulting dynamic energy against the single-supply and
 * dual-supply (LDO) alternatives. Also the Table-2 footnote helper:
 * the minimum level whose Vddv clears a reliability threshold.
 */

#ifndef VBOOST_CORE_TRADEOFF_HPP
#define VBOOST_CORE_TRADEOFF_HPP

#include <functional>
#include <optional>
#include <vector>

#include "core/context.hpp"
#include "energy/supply_config.hpp"

namespace vboost::core {

/** One chosen operating point of the iso-accuracy study. */
struct OperatingPoint
{
    Volt vdd{0.0};
    /** Chosen boost level (0 = no boost needed). */
    int level = 0;
    /** Boosted SRAM voltage at that level. */
    Volt vddv{0.0};
    /** Accuracy achieved at vddv. */
    double accuracy = 0.0;
    /** Dynamic energy of the boosted configuration. */
    Joule boostedEnergy{0.0};
    /** Dynamic energy of the equivalent dual-supply configuration
     *  (SRAM at vddv, logic at vdd through an LDO). */
    Joule dualEnergy{0.0};
};

/** Explores boost levels against an accuracy target. */
class TradeoffExplorer
{
  public:
    /** Returns accuracy when all weight accesses happen at the given
     *  SRAM voltage. */
    using AccuracyFn = std::function<double(Volt vddv)>;

    /**
     * @param ctx shared study configuration.
     * @param num_banks banks in the boosted memory.
     */
    TradeoffExplorer(const SimContext &ctx, int num_banks);

    /** Boosted voltage at (vdd, level). */
    Volt boostedVoltage(Volt vdd, int level) const;

    /** Number of programmable levels. */
    int levels() const { return supply_.levels(); }

    /**
     * Smallest level (possibly 0) whose accuracy at the boosted
     * voltage meets `target`; nullopt when even the highest level
     * falls short.
     */
    std::optional<int> minimalLevelForAccuracy(
        Volt vdd, double target, const AccuracyFn &accuracy) const;

    /**
     * Table-2 footnote: the smallest level whose boosted voltage
     * reaches at least `v_target` ("Inputs are boosted to the minimum
     * level such that Vddv_i > 0.44 V"); nullopt if unreachable.
     */
    std::optional<int> minimalLevelReaching(Volt vdd,
                                            Volt v_target) const;

    /**
     * Full iso-accuracy operating point for one supply voltage:
     * chooses the minimal adequate level and evaluates the boosted
     * and dual-supply dynamic energies for the workload.
     */
    std::optional<OperatingPoint> isoAccuracyPoint(
        Volt vdd, double target, const AccuracyFn &accuracy,
        const energy::Workload &workload) const;

    /** The underlying supply configurator. */
    const energy::SupplyConfigurator &supply() const { return supply_; }

  private:
    energy::SupplyConfigurator supply_;
};

} // namespace vboost::core

#endif // VBOOST_CORE_TRADEOFF_HPP
