/**
 * @file
 * Canary-based runtime boost control. The paper's related work [22]
 * deploys in-situ canary circuits to detect approaching SRAM failure
 * at runtime; combined with this paper's per-bank programmable
 * booster, canaries close the loop: each bank carries a column of
 * canary cells engineered to fail at a voltage *margin above* the
 * real array cells, and the controller raises the bank's boost level
 * until no canary fails — guaranteeing the array itself operates with
 * margin, without any offline voltage characterization.
 */

#ifndef VBOOST_CORE_CANARY_HPP
#define VBOOST_CORE_CANARY_HPP

#include <optional>

#include "core/context.hpp"
#include "energy/supply_config.hpp"
#include "sram/fault_map.hpp"

namespace vboost::core {

/** Runtime boost-level controller driven by canary cells. */
class CanaryController
{
  public:
    /**
     * @param ctx study configuration (booster + failure model).
     * @param num_banks banks in the controlled memory.
     * @param canaries_per_bank canary cells sampled per decision.
     * @param margin canary weakening: a canary at effective voltage V
     *        fails like a real cell at V - margin.
     */
    CanaryController(const SimContext &ctx, int num_banks,
                     int canaries_per_bank = 64, Volt margin = Volt(0.03));

    /**
     * Number of canary failures observed at (vdd, level) under one
     * vulnerability map. Canary cells live in a dedicated region of
     * the map's cell space, disjoint from data cells.
     */
    int observedFailures(Volt vdd, int level,
                         const sram::VulnerabilityMap &map) const;

    /**
     * The controller's decision: the minimal boost level at which no
     * canary fails. nullopt when even the top level leaves failing
     * canaries (the supply is too low to guarantee margin).
     */
    std::optional<int> chooseLevel(Volt vdd,
                                   const sram::VulnerabilityMap &map) const;

    /**
     * Expected failure probability of the *data* array at the chosen
     * level (what the canary margin actually buys).
     */
    double arrayFailProbAt(Volt vdd, int level) const;

    /** The canary weakening margin. */
    Volt margin() const { return margin_; }

    /** Canary cells sampled per decision. */
    int canaries() const { return canaries_; }

  private:
    energy::SupplyConfigurator supply_;
    sram::FailureRateModel failure_;
    int canaries_;
    Volt margin_;
};

} // namespace vboost::core

#endif // VBOOST_CORE_CANARY_HPP
