#include "core/canary.hpp"

#include "common/logging.hpp"

namespace vboost::core {

namespace {

/** Canary cells live far above any data region in the cell space. */
constexpr std::uint64_t kCanaryCellBase = 1ull << 40;

} // namespace

CanaryController::CanaryController(const SimContext &ctx, int num_banks,
                                   int canaries_per_bank, Volt margin)
    : supply_(ctx.tech, ctx.design, num_banks), failure_(ctx.failure),
      canaries_(canaries_per_bank), margin_(margin)
{
    if (canaries_per_bank < 1)
        fatal("CanaryController: at least one canary cell required");
    if (margin < Volt(0.0))
        fatal("CanaryController: margin must be non-negative");
}

int
CanaryController::observedFailures(Volt vdd, int level,
                                   const sram::VulnerabilityMap &map) const
{
    const Volt vddv = supply_.boostedVoltage(vdd, level);
    // A canary at Vddv behaves like a real cell at Vddv - margin.
    const double f = failure_.rate(vddv - margin_);
    int failures = 0;
    for (int c = 0; c < canaries_; ++c) {
        if (map.isFaulty(kCanaryCellBase + static_cast<std::uint64_t>(c),
                         f)) {
            ++failures;
        }
    }
    return failures;
}

std::optional<int>
CanaryController::chooseLevel(Volt vdd,
                              const sram::VulnerabilityMap &map) const
{
    for (int level = 0; level <= supply_.levels(); ++level) {
        if (observedFailures(vdd, level, map) == 0)
            return level;
    }
    return std::nullopt;
}

double
CanaryController::arrayFailProbAt(Volt vdd, int level) const
{
    return failure_.rate(supply_.boostedVoltage(vdd, level));
}

} // namespace vboost::core
