/**
 * @file
 * NeuralFuse-style learned input transform (PAPERS.md: NeuralFuse).
 * A small residual preprocessing network rewrites each input into an
 * error-resistant pattern *before* it enters the accelerator, so a
 * model whose weights are corrupted by low-voltage SRAM faults
 * recovers accuracy with NO weight retraining — the access-limited
 * setting where the deployed base model is frozen (a sealed chip, a
 * tenant without training rights) and only the transform is trained,
 * through the corrupted forward pass.
 *
 * The transform is deliberately tiny (two dense layers) so its
 * energy/latency overhead — extra MACs and operand traffic per
 * inference, accounted by the planner and accel::RecoveryOverhead —
 * stays a small fraction of the base network it protects.
 */

#ifndef VBOOST_RECOVERY_INPUT_TRANSFORM_HPP
#define VBOOST_RECOVERY_INPUT_TRANSFORM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/trainer.hpp"
#include "fi/injector.hpp"
#include "obs/observability.hpp"

namespace vboost::recovery {

/** Shape/scale of the learned input transform. */
struct TransformConfig
{
    /** Input feature count (784 for the MNIST FC-DNN). */
    int inputDim = 784;
    /** Hidden width of the two-layer residual MLP. */
    int hiddenDim = 32;
    /** Residual scale: y = clamp(x + alpha * t(x), 0, 1). Bounded
     *  perturbation keeps the transformed input in the base model's
     *  training distribution (NeuralFuse's bounded-energy constraint). */
    double alpha = 0.25;
    /** Initializer seed for the transform parameters. */
    std::uint64_t initSeed = 1;

    /** Fatals with a usage-style message on invalid values. */
    void validate() const;
};

/**
 * The learned transform: y = clamp(x + alpha * t(x), 0, 1) with
 * t = Dense(in, h) -> ReLU -> Dense(h, in). apply(train=true) caches
 * the clamp mask so backward() can route loss gradients from the
 * (frozen, corrupted) base network into the transform parameters —
 * straight-through where the clamp saturates.
 */
class InputTransform
{
  public:
    explicit InputTransform(TransformConfig cfg = {});

    /** Transform a batch [B, inputDim]. */
    dnn::Tensor apply(const dnn::Tensor &x, bool train = false);

    /**
     * Backward through the last apply(train=true): accumulates
     * gradients on the transform parameters and returns dL/dx.
     *
     * @param grad_out dL/dy from the base network's input gradient.
     */
    dnn::Tensor backward(const dnn::Tensor &grad_out);

    /** The transform parameters' network (for SGD updates, cloning,
     *  serialization). */
    dnn::Network &network() { return net_; }

    /** Zero the transform parameter gradients. */
    void zeroGrads() { net_.zeroGrads(); }

    /** Extra multiply-accumulates per transformed sample
     *  (2 * inputDim * hiddenDim for the two dense layers). */
    std::uint64_t macsPerSample() const;

    /** Extra SRAM operand accesses per transformed sample at the
     *  given packing (int16 elements per access), DANA-style: weight,
     *  input and output operands each streamed once. */
    std::uint64_t accessesPerSample(int elems_per_access = 4) const;

    /** Number of learned scalar parameters. */
    std::size_t parameterCount();

    /** Save the transform parameters via dnn::serialize. */
    void save(const std::string &path);

    /** Load transform parameters; false if the file does not exist. */
    bool load(const std::string &path);

    const TransformConfig &config() const { return cfg_; }

  private:
    TransformConfig cfg_;
    dnn::Network net_;
    /** Pre-clamp output of the last apply(train=true). */
    dnn::Tensor lastRaw_;
};

/** Configuration of access-limited transform training. */
struct TransformTrainConfig
{
    /** Underlying SGD configuration (epochs, batch size, lr, ...). */
    dnn::TrainConfig base;
    /** Bit failure probability injected into the frozen base weights
     *  during training (the intended deployment voltage's rate). */
    double failProb = 5e-3;
    /** Per-read flip probability of a faulty cell. */
    double flipProb = 0.5;
    /** Clean epochs before injection starts (the transform first
     *  learns to be harmless, then learns to protect). */
    int warmupEpochs = 0;
    /** Element-wise gradient clamp on transform gradients (0 = off). */
    double gradClip = 0.5;
    /** Seed for the per-batch vulnerability maps: training sees a
     *  fresh map every batch, so the transform generalizes across
     *  chips instead of memorizing one (NeuralFuse's transferability
     *  setting; contrast MapAwareTrainer's frozen chip map). */
    std::uint64_t seed = 7;
    /** Cell layout used for the injected faults. */
    fi::MemoryLayout layout;

    /** Fatals with a usage-style message on invalid values. */
    void validate() const;
};

/** Per-run statistics of transform training. */
struct TransformTrainStats
{
    /** Per-epoch loss / accuracy (through the corrupted base). */
    std::vector<dnn::EpochStats> epochs;
    /** Minibatches processed. */
    std::uint64_t batches = 0;
    /** Total weight bits flipped across all batches. */
    std::uint64_t bitFlips = 0;

    /** FNV-1a digest over the per-epoch loss/accuracy bits, epoch
     *  order — the bitwise acceptance value for determinism tests. */
    std::uint64_t digest() const;
};

/**
 * Trains an InputTransform through a *frozen* corrupted base network:
 * each minibatch corrupts the base weights under a fresh vulnerability
 * map (fi::corruptNetwork), forwards transform -> corrupted base,
 * and backpropagates the loss through the base into the transform.
 * Only transform parameters are updated; the base never changes.
 * Deterministic under the §7 discipline: per-batch maps and flip
 * streams are counter-derived from the config seed.
 */
class TransformTrainer
{
  public:
    explicit TransformTrainer(TransformTrainConfig cfg = {});

    /**
     * Train `tf` in place.
     *
     * @param tf the transform being trained.
     * @param base the frozen base network (never modified).
     * @param scratch structurally identical to `base`; holds the
     *        corrupted weights during each batch.
     * @param train_set training data.
     * @param rng shuffling randomness.
     */
    TransformTrainStats train(InputTransform &tf, dnn::Network &base,
                              dnn::Network &scratch,
                              const dnn::Dataset &train_set, Rng &rng);

    /** Publish training counters (`recovery.fuse.*`) into `o` after
     *  each train() call. Pass nullptr to detach. */
    void attachObservability(obs::Observability *o,
                             obs::Labels labels = {});

    const TransformTrainConfig &config() const { return cfg_; }

  private:
    TransformTrainConfig cfg_;
    obs::Observability *obs_ = nullptr;
    obs::Labels labels_;
};

} // namespace vboost::recovery

#endif // VBOOST_RECOVERY_INPUT_TRANSFORM_HPP
