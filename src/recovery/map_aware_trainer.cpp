#include "recovery/map_aware_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/logging.hpp"
#include "recovery/recovery.hpp"

namespace vboost::recovery {

void
MapAwareConfig::validate() const
{
    if (train.failProb < 0.0 || train.failProb > 1.0)
        fatal("MapAwareConfig: train.failProb must be in [0,1] (got ",
              train.failProb, ")");
    if (refreshInterval < 0)
        fatal("MapAwareConfig: refreshInterval must be >= 0 (got ",
              refreshInterval, ")");
    if (curriculumEpochs < 0)
        fatal("MapAwareConfig: curriculumEpochs must be >= 0 (got ",
              curriculumEpochs, ")");
    if (curriculumStartScale <= 0.0 || curriculumStartScale > 1.0)
        fatal("MapAwareConfig: curriculumStartScale must be in (0,1] "
              "(got ", curriculumStartScale, ")");
    if (mapModel == sram::MapModel::Clustered)
        cluster.validate();
}

std::uint64_t
MapAwareStats::digest() const
{
    std::uint64_t h = kFnvOffset;
    for (const auto &e : epochs) {
        h = fnvMixDouble(h, e.meanLoss);
        h = fnvMixDouble(h, e.trainAccuracy);
    }
    h = fnvMix(h, batches);
    h = fnvMix(h, mapRefreshes);
    h = fnvMix(h, bitFlips);
    h = fnvMixDouble(h, finalInjectedProb);
    return h;
}

MapAwareTrainer::MapAwareTrainer(MapAwareConfig cfg)
    : cfg_(std::move(cfg)),
      map_(cfg_.chipSeed, cfg_.chipMapIndex, cfg_.mapModel,
           cfg_.cluster)
{
    cfg_.validate();
    // Delegate the shared straight-through knobs to the trainer this
    // class generalizes, and the SGD knobs to the base trainer.
    fi::FaultAwareTrainer validator(cfg_.train);
    (void)validator;
}

void
MapAwareTrainer::attachObservability(obs::Observability *o,
                                     obs::Labels labels)
{
    obs_ = o;
    labels_ = std::move(labels);
}

double
MapAwareTrainer::curriculumProb(int epoch) const
{
    const int k = epoch - cfg_.train.warmupEpochs;
    if (k < 0)
        return 0.0;
    if (cfg_.curriculumEpochs <= 0 || k >= cfg_.curriculumEpochs)
        return cfg_.train.failProb;
    // Geometric ramp: startScale * failProb at k = 0, failProb once
    // the curriculum completes — MATIC's staged supply lowering.
    const double t =
        static_cast<double>(k) /
        static_cast<double>(cfg_.curriculumEpochs);
    return cfg_.train.failProb *
           std::pow(cfg_.curriculumStartScale, 1.0 - t);
}

MapAwareStats
MapAwareTrainer::train(dnn::Network &net, dnn::Network &scratch,
                       const dnn::Dataset &train_set, Rng &rng)
{
    if (train_set.size() == 0)
        fatal("MapAwareTrainer::train: empty training set");

    auto clean_params = net.params();
    auto noisy_params = scratch.params();
    if (clean_params.size() != noisy_params.size())
        fatal("MapAwareTrainer: net and scratch structure mismatch");

    std::vector<dnn::Tensor> velocity;
    velocity.reserve(clean_params.size());
    for (auto &p : clean_params)
        velocity.push_back(dnn::Tensor::zeros(p.value->shape()));

    auto spec = fi::InjectionSpec::allWeights();
    spec.flipProb = cfg_.train.flipProb;

    dnn::SoftmaxCrossEntropy loss_fn;
    std::vector<std::size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    const auto &base = cfg_.train.base;
    MapAwareStats stats;
    double lr = base.learningRate;
    std::uint64_t batch_counter = 0;
    // The injected rate is frozen at its last profiled value and only
    // re-snapped to the curriculum at refresh points: training between
    // refreshes runs against a stale profile, like the hardware flow.
    double injected_prob = 0.0;
    bool profiled = false;
    int since_refresh = 0;
    for (int epoch = 0; epoch < base.epochs; ++epoch) {
        for (std::size_t i = order.size(); i > 1; --i) {
            const std::size_t j = rng.uniformInt(i);
            std::swap(order[i - 1], order[j]);
        }

        const bool injecting = epoch >= cfg_.train.warmupEpochs;
        double loss_sum = 0.0;
        std::size_t correct = 0, seen = 0, batches = 0;
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(base.batchSize)) {
            const std::size_t count =
                std::min(static_cast<std::size_t>(base.batchSize),
                         order.size() - start);
            std::vector<std::size_t> idx(
                order.begin() + static_cast<long>(start),
                order.begin() + static_cast<long>(start + count));
            dnn::Dataset batch = train_set.gather(idx);

            if (injecting) {
                const bool due =
                    !profiled ||
                    (cfg_.refreshInterval > 0 &&
                     since_refresh >= cfg_.refreshInterval);
                if (due) {
                    injected_prob = curriculumProb(epoch);
                    profiled = true;
                    since_refresh = 0;
                    ++stats.mapRefreshes;
                } else {
                    ++since_refresh;
                }
            }
            const double fail_prob = injecting ? injected_prob : 0.0;

            // The chip map is FROZEN; only the per-read flip stream is
            // counter-derived per batch.
            Rng flip_rng = Rng(cfg_.train.seed).split(batch_counter);
            ++batch_counter;
            stats.bitFlips += corruptNetwork(scratch, net, map_,
                                             fail_prob, spec,
                                             cfg_.train.layout,
                                             flip_rng);

            scratch.zeroGrads();
            dnn::Tensor logits =
                scratch.forward(batch.images, /*train=*/true);
            dnn::Tensor grad;
            loss_sum += loss_fn.lossAndGrad(logits, batch.labels, grad); // vblint: assoc-ok(serial batch-order accumulation, single training thread)
            ++batches;
            scratch.backward(grad);

            for (int r = 0; r < logits.dim(0); ++r) {
                int best = 0;
                for (int c = 1; c < logits.dim(1); ++c) {
                    if (logits.at(r, c) > logits.at(r, best))
                        best = c;
                }
                correct += best ==
                           batch.labels[static_cast<std::size_t>(r)];
                ++seen;
            }

            // Straight-through: corrupted-forward gradients update the
            // clean parameters, clamped and projected exactly as in
            // fi::FaultAwareTrainer.
            const auto gclip = static_cast<float>(cfg_.train.gradClip);
            const auto wclip =
                static_cast<float>(cfg_.train.weightClip);
            for (std::size_t p = 0; p < clean_params.size(); ++p) {
                dnn::Tensor &v = velocity[p];
                dnn::Tensor &value = *clean_params[p].value;
                const dnn::Tensor &g = *noisy_params[p].grad;
                for (std::size_t e = 0; e < value.numel(); ++e) {
                    float ge = g[e];
                    if (gclip > 0.0f)
                        ge = std::clamp(ge, -gclip, gclip);
                    v[e] = static_cast<float>(base.momentum * v[e] -
                                              lr * ge);
                    value[e] += v[e]; // vblint: assoc-ok(serial momentum-SGD update, single training thread)
                    if (wclip > 0.0f)
                        value[e] = std::clamp(value[e], -wclip, wclip);
                }
            }
            stats.finalInjectedProb = fail_prob;
        }
        stats.batches += batches;

        dnn::EpochStats es;
        es.meanLoss = loss_sum / static_cast<double>(batches);
        es.trainAccuracy =
            static_cast<double>(correct) / static_cast<double>(seen);
        stats.epochs.push_back(es);
        if (base.verbose) {
            inform("map-aware epoch ", epoch + 1, "/", base.epochs,
                   ": loss=", es.meanLoss,
                   " train_acc=", es.trainAccuracy,
                   " injected=", stats.finalInjectedProb);
        }
        lr *= base.lrDecay;
    }

    if (obs_ != nullptr) {
        obs_->metrics.counter("recovery.matic.batches", labels_)
            .add(stats.batches);
        obs_->metrics.counter("recovery.matic.map_refreshes", labels_)
            .add(stats.mapRefreshes);
        obs_->metrics.counter("recovery.matic.bit_flips", labels_)
            .add(stats.bitFlips);
        obs_->metrics
            .gauge("recovery.matic.final_injected_prob", labels_)
            .set(stats.finalInjectedProb);
        if (!stats.epochs.empty()) {
            obs_->metrics.gauge("recovery.matic.final_loss", labels_)
                .set(stats.epochs.back().meanLoss);
            obs_->metrics
                .gauge("recovery.matic.final_train_accuracy", labels_)
                .set(stats.epochs.back().trainAccuracy);
        }
    }
    return stats;
}

} // namespace vboost::recovery
