#include "recovery/input_transform.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.hpp"
#include "dnn/layers.hpp"
#include "dnn/serialize.hpp"
#include "recovery/recovery.hpp"

namespace vboost::recovery {

void
TransformConfig::validate() const
{
    if (inputDim < 1)
        fatal("TransformConfig: inputDim must be positive (got ",
              inputDim, ")");
    if (hiddenDim < 1)
        fatal("TransformConfig: hiddenDim must be positive (got ",
              hiddenDim, ")");
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("TransformConfig: alpha must be in (0, 1] (got ", alpha,
              ")");
}

InputTransform::InputTransform(TransformConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
    Rng rng(cfg_.initSeed);
    net_.addLayer<dnn::Dense>(cfg_.inputDim, cfg_.hiddenDim, rng,
                              "tf_fc1");
    net_.addLayer<dnn::Relu>("tf_relu");
    net_.addLayer<dnn::Dense>(cfg_.hiddenDim, cfg_.inputDim, rng,
                              "tf_fc2");
}

dnn::Tensor
InputTransform::apply(const dnn::Tensor &x, bool train)
{
    if (x.rank() != 2 || x.dim(1) != cfg_.inputDim)
        fatal("InputTransform::apply: input ", x.shapeString(),
              " does not match [B, ", cfg_.inputDim, "]");
    dnn::Tensor t = net_.forward(x, train);
    const auto alpha = static_cast<float>(cfg_.alpha);
    dnn::Tensor raw = dnn::Tensor::uninitialized(x.shape());
    dnn::Tensor y = dnn::Tensor::uninitialized(x.shape());
    for (std::size_t e = 0; e < x.numel(); ++e) {
        const float r = x[e] + alpha * t[e];
        raw[e] = r;
        y[e] = std::clamp(r, 0.0f, 1.0f);
    }
    if (train)
        lastRaw_ = std::move(raw);
    return y;
}

dnn::Tensor
InputTransform::backward(const dnn::Tensor &grad_out)
{
    if (lastRaw_.numel() != grad_out.numel())
        fatal("InputTransform::backward: no cached apply(train=true) "
              "pass for this batch shape");
    const auto alpha = static_cast<float>(cfg_.alpha);
    // Gradient passes where the clamp is inactive; saturated elements
    // are pinned at the bound, so their gradient is zero (exact, not
    // straight-through: the residual keeps most elements interior).
    dnn::Tensor pass = dnn::Tensor::uninitialized(grad_out.shape());
    for (std::size_t e = 0; e < grad_out.numel(); ++e) {
        pass[e] = (lastRaw_[e] > 0.0f && lastRaw_[e] < 1.0f)
                      ? grad_out[e]
                      : 0.0f;
    }
    dnn::Tensor gt = dnn::Tensor::uninitialized(grad_out.shape());
    for (std::size_t e = 0; e < grad_out.numel(); ++e)
        gt[e] = alpha * pass[e];
    dnn::Tensor gx = net_.backward(gt);
    // The identity path of the residual adds the passed gradient.
    for (std::size_t e = 0; e < gx.numel(); ++e)
        gx[e] += pass[e]; // vblint: assoc-ok(element-wise two-term add, no cross-iteration accumulation)
    return gx;
}

std::uint64_t
InputTransform::macsPerSample() const
{
    return 2ull * static_cast<std::uint64_t>(cfg_.inputDim) *
           static_cast<std::uint64_t>(cfg_.hiddenDim);
}

std::uint64_t
InputTransform::accessesPerSample(int elems_per_access) const
{
    if (elems_per_access < 1)
        fatal("InputTransform::accessesPerSample: elems_per_access "
              "must be positive");
    const auto in = static_cast<std::uint64_t>(cfg_.inputDim);
    const auto h = static_cast<std::uint64_t>(cfg_.hiddenDim);
    // Streamed int16 elements: both weight matrices once, the input
    // read, the hidden activation written and read back, the output
    // written (biases ride along with the weights).
    const std::uint64_t elems = 2 * in * h + 2 * in + 2 * h;
    const auto per = static_cast<std::uint64_t>(elems_per_access);
    return (elems + per - 1) / per;
}

std::size_t
InputTransform::parameterCount()
{
    std::size_t n = 0;
    for (const auto &p : net_.params())
        n += p.value->numel();
    return n;
}

void
InputTransform::save(const std::string &path)
{
    dnn::saveParameters(net_, path);
}

bool
InputTransform::load(const std::string &path)
{
    return dnn::loadParameters(net_, path);
}

void
TransformTrainConfig::validate() const
{
    if (failProb < 0.0 || failProb > 1.0)
        fatal("TransformTrainConfig: failProb must be in [0,1] (got ",
              failProb, ")");
    if (flipProb < 0.0 || flipProb > 1.0)
        fatal("TransformTrainConfig: flipProb must be in [0,1] (got ",
              flipProb, ")");
    if (warmupEpochs < 0)
        fatal("TransformTrainConfig: warmupEpochs must be >= 0 (got ",
              warmupEpochs, ")");
    if (gradClip < 0.0)
        fatal("TransformTrainConfig: gradClip must be >= 0 (got ",
              gradClip, ")");
}

std::uint64_t
TransformTrainStats::digest() const
{
    std::uint64_t h = kFnvOffset;
    for (const auto &e : epochs) {
        h = fnvMixDouble(h, e.meanLoss);
        h = fnvMixDouble(h, e.trainAccuracy);
    }
    h = fnvMix(h, batches);
    h = fnvMix(h, bitFlips);
    return h;
}

TransformTrainer::TransformTrainer(TransformTrainConfig cfg)
    : cfg_(std::move(cfg))
{
    cfg_.validate();
    // Delegate base SGD validation to the trainer it mirrors.
    dnn::SgdTrainer validator(cfg_.base);
    (void)validator;
}

void
TransformTrainer::attachObservability(obs::Observability *o,
                                      obs::Labels labels)
{
    obs_ = o;
    labels_ = std::move(labels);
}

TransformTrainStats
TransformTrainer::train(InputTransform &tf, dnn::Network &base,
                        dnn::Network &scratch,
                        const dnn::Dataset &train_set, Rng &rng)
{
    if (train_set.size() == 0)
        fatal("TransformTrainer::train: empty training set");
    if (base.params().size() != scratch.params().size())
        fatal("TransformTrainer: base and scratch structure mismatch");

    auto tf_params = tf.network().params();
    std::vector<dnn::Tensor> velocity;
    velocity.reserve(tf_params.size());
    for (auto &p : tf_params)
        velocity.push_back(dnn::Tensor::zeros(p.value->shape()));

    auto spec = fi::InjectionSpec::allWeights();
    spec.flipProb = cfg_.flipProb;

    dnn::SoftmaxCrossEntropy loss_fn;
    std::vector<std::size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    const auto &b = cfg_.base;
    TransformTrainStats stats;
    double lr = b.learningRate;
    std::uint64_t batch_counter = 0;
    for (int epoch = 0; epoch < b.epochs; ++epoch) {
        for (std::size_t i = order.size(); i > 1; --i) {
            const std::size_t j = rng.uniformInt(i);
            std::swap(order[i - 1], order[j]);
        }

        double loss_sum = 0.0;
        std::size_t correct = 0, seen = 0, batches = 0;
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(b.batchSize)) {
            const std::size_t count =
                std::min(static_cast<std::size_t>(b.batchSize),
                         order.size() - start);
            std::vector<std::size_t> idx(
                order.begin() + static_cast<long>(start),
                order.begin() + static_cast<long>(start + count));
            dnn::Dataset batch = train_set.gather(idx);

            // Fresh map per batch: the transform must transfer across
            // chips, never memorize one chip's broken cells.
            const sram::VulnerabilityMap map(cfg_.seed, batch_counter);
            Rng flip_rng = Rng(cfg_.seed).split(batch_counter);
            ++batch_counter;
            const double fail_prob =
                epoch < cfg_.warmupEpochs ? 0.0 : cfg_.failProb;
            stats.bitFlips += corruptNetwork(scratch, base, map,
                                             fail_prob, spec,
                                             cfg_.layout, flip_rng);

            tf.zeroGrads();
            scratch.zeroGrads();
            dnn::Tensor x = tf.apply(batch.images, /*train=*/true);
            dnn::Tensor logits = scratch.forward(x, /*train=*/true);
            dnn::Tensor grad;
            loss_sum += loss_fn.lossAndGrad(logits, batch.labels, grad); // vblint: assoc-ok(serial batch-order accumulation, single training thread)
            ++batches;
            // The base is frozen: its backward pass only transports
            // the gradient to the transform's output.
            dnn::Tensor grad_in = scratch.backward(grad);
            tf.backward(grad_in);

            for (int r = 0; r < logits.dim(0); ++r) {
                int best = 0;
                for (int c = 1; c < logits.dim(1); ++c) {
                    if (logits.at(r, c) > logits.at(r, best))
                        best = c;
                }
                correct += best ==
                           batch.labels[static_cast<std::size_t>(r)];
                ++seen;
            }

            const auto gclip = static_cast<float>(cfg_.gradClip);
            for (std::size_t p = 0; p < tf_params.size(); ++p) {
                dnn::Tensor &v = velocity[p];
                dnn::Tensor &value = *tf_params[p].value;
                const dnn::Tensor &g = *tf_params[p].grad;
                for (std::size_t e = 0; e < value.numel(); ++e) {
                    float ge = g[e];
                    if (gclip > 0.0f)
                        ge = std::clamp(ge, -gclip, gclip);
                    v[e] = static_cast<float>(b.momentum * v[e] -
                                              lr * ge);
                    value[e] += v[e]; // vblint: assoc-ok(serial momentum-SGD update, single training thread)
                }
            }
        }
        stats.batches += batches;

        dnn::EpochStats es;
        es.meanLoss = loss_sum / static_cast<double>(batches);
        es.trainAccuracy =
            static_cast<double>(correct) / static_cast<double>(seen);
        stats.epochs.push_back(es);
        if (b.verbose) {
            inform("transform epoch ", epoch + 1, "/", b.epochs,
                   ": loss=", es.meanLoss,
                   " train_acc=", es.trainAccuracy);
        }
        lr *= b.lrDecay;
    }

    if (obs_ != nullptr) {
        obs_->metrics.counter("recovery.fuse.batches", labels_)
            .add(stats.batches);
        obs_->metrics.counter("recovery.fuse.bit_flips", labels_)
            .add(stats.bitFlips);
        if (!stats.epochs.empty()) {
            obs_->metrics.gauge("recovery.fuse.final_loss", labels_)
                .set(stats.epochs.back().meanLoss);
            obs_->metrics
                .gauge("recovery.fuse.final_train_accuracy", labels_)
                .set(stats.epochs.back().trainAccuracy);
        }
    }
    return stats;
}

} // namespace vboost::recovery
