/**
 * @file
 * Chip-adaptive accuracy recovery (DESIGN.md §15): the shared
 * vocabulary of the recovery subsystem — the recovery-mode menu the
 * serving planner chooses from, the planner-facing descriptor of one
 * recovery option (accuracy curve + per-inference overheads), and the
 * ChipEvaluator that measures a model's accuracy under ONE frozen
 * chip's vulnerability map across Monte-Carlo read realizations.
 *
 * Layering: recovery sits between fi (whose injection machinery both
 * engines reuse) and serve (whose planner consumes PlannedRecovery
 * options). Everything here obeys the §7 determinism discipline:
 * counter-based flip streams, read-order reductions, and bitwise
 * thread-count invariance with FNV digests as acceptance values.
 */

#ifndef VBOOST_RECOVERY_RECOVERY_HPP
#define VBOOST_RECOVERY_RECOVERY_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "dnn/dataset.hpp"
#include "dnn/network.hpp"
#include "fi/injector.hpp"
#include "obs/observability.hpp"
#include "recovery/input_transform.hpp"
#include "sram/fault_map.hpp"

namespace vboost::recovery {

/** The recovery menu a serving plan can select from. */
enum class RecoveryMode
{
    /** Boost-only: no training-side or input-side recovery. */
    None = 0,
    /** MATIC map-aware retrained weights for the serving chip. */
    MapAware = 1,
    /** NeuralFuse learned input transform in front of frozen weights. */
    InputTransform = 2,
    /** Map-aware weights plus the input transform. */
    Combined = 3,
};

/** Display name ("none"/"map_aware"/"input_transform"/"combined"). */
const char *toString(RecoveryMode mode);

/**
 * One recovery option as the serving planner sees it: the accuracy
 * the mode achieves as a function of the weight-SRAM voltage, and the
 * per-inference overheads the mode costs. The planner folds the
 * overheads into its energy objective (and accel::RecoveryOverhead
 * folds them into the performance model), so "lower Vdd + transform"
 * competes fairly against "higher boost".
 */
struct PlannedRecovery
{
    RecoveryMode mode = RecoveryMode::None;
    /** Accuracy at a weight-SRAM voltage under this mode (e.g. a
     *  sampled ChipEvaluator curve for the serving chip). */
    std::function<double(Volt)> accuracy;
    /** Fault-free ceiling of this mode (diagnostics/reporting). */
    double faultFreeAccuracy = 0.0;
    /** Extra multiply-accumulates per inference (the transform). */
    std::uint64_t extraComputeOps = 0;
    /** Extra input-memory operand accesses per inference. */
    std::uint64_t extraInputAccesses = 0;

    /** Fatals with a usage-style message on invalid values. */
    void validate() const;
};

/** FNV-1a offset basis shared by the recovery digests. */
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

/** FNV-1a fold of one 64-bit word into `h`, byte by byte. */
std::uint64_t fnvMix(std::uint64_t h, std::uint64_t word);

/** FNV-1a fold of a double's raw bits into `h`. */
std::uint64_t fnvMixDouble(std::uint64_t h, double value);

/** FNV-1a digest over the raw float bits of every parameter of `net`,
 *  in parameter order — the bitwise identity of a trained model. */
std::uint64_t weightsDigest(dnn::Network &net);

/** Monte-Carlo configuration of per-chip evaluation. */
struct ChipEvalConfig
{
    /** Independent read realizations of the frozen map (faulty cells
     *  flip per read with flipProb; the paper averages reads the same
     *  way it averages maps). */
    int numReads = 8;
    /** Test samples evaluated per read (0 = whole test set). */
    std::size_t maxTestSamples = 400;
    /** Per-read flip probability of a faulty cell. */
    double flipProb = 0.5;
    /** Seed of the counter-based per-read flip streams. */
    std::uint64_t flipSeed = 1;
    /** Cell layout of the modeled memories. */
    fi::MemoryLayout layout;
    /** Worker threads (0 = hardware_concurrency, 1 = serial). Any
     *  value produces bitwise identical results. */
    int numThreads = 0;

    /** Fatals with a usage-style message on invalid values. */
    void validate() const;
};

/** Accuracy of one model on one chip at one failure probability. */
struct ChipAccuracy
{
    /** Mean accuracy across read realizations. */
    double meanAccuracy = 0.0;
    /** Stddev of accuracy across reads. */
    double stddevAccuracy = 0.0;
    /** Worst / best read. */
    double minAccuracy = 0.0;
    double maxAccuracy = 0.0;
    /** Mean weight bits flipped per read. */
    double meanBitFlips = 0.0;
    /** FNV-1a digest over per-read (accuracy, flips) bits in read
     *  order — the thread-invariance acceptance value. */
    std::uint64_t digest = 0;
};

/**
 * Evaluates a trained network's accuracy under ONE frozen chip map
 * (the per-chip view MATIC optimizes for; fi::FaultInjectionRunner is
 * the across-chips population view). Read realizations run in
 * parallel on the shared pool with slot-exclusive scratch clones and
 * reduce in read order, so results are bitwise thread-count invariant.
 */
class ChipEvaluator
{
  public:
    /**
     * @param net trained network (golden parameters; must outlive the
     *        evaluator).
     * @param test_set evaluation data.
     * @param map the chip's frozen vulnerability map.
     * @param cfg Monte-Carlo configuration.
     */
    ChipEvaluator(dnn::Network &net, const dnn::Dataset &test_set,
                  sram::VulnerabilityMap map, ChipEvalConfig cfg = {});

    /** Accuracy with fault-free int16 quantization (the ceiling). */
    double baselineAccuracy();

    /** Monte-Carlo accuracy at one bit failure probability, weights
     *  corrupted under the chip map. */
    ChipAccuracy evaluate(double fail_prob);

    /**
     * As evaluate(), with `tf` applied to every test input before the
     * corrupted forward pass (the NeuralFuse deployment: the input
     * memory is boosted above the Table-2 reliability floor, so
     * transformed inputs are stored reliably while weights fault).
     */
    ChipAccuracy evaluateWithTransform(double fail_prob,
                                       InputTransform &tf);

    /** The frozen chip map. */
    const sram::VulnerabilityMap &map() const { return map_; }

    /** Publish evaluation counters (`recovery.eval.*`) into `o` after
     *  each evaluate call. Pass nullptr to detach. */
    void attachObservability(obs::Observability *o,
                             obs::Labels labels = {});

    const ChipEvalConfig &config() const { return cfg_; }

  private:
    /** Shared Monte-Carlo loop; `inputs` are the (possibly
     *  transformed) evaluation images. */
    ChipAccuracy run(double fail_prob, const dnn::Tensor &inputs,
                     const char *kind);

    /** Grow the per-worker scratch-clone pool to `count` networks. */
    void ensureScratch(unsigned count);

    dnn::Network &net_;
    dnn::Dataset evalSet_;
    sram::VulnerabilityMap map_;
    ChipEvalConfig cfg_;
    /** One scratch clone per worker slot, created lazily. */
    std::vector<std::unique_ptr<dnn::Network>> scratch_;

    obs::Observability *obs_ = nullptr;
    obs::Labels labels_;
};

} // namespace vboost::recovery

#endif // VBOOST_RECOVERY_RECOVERY_HPP
