#include "recovery/recovery.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "dnn/trainer.hpp"

namespace vboost::recovery {

const char *
toString(RecoveryMode mode)
{
    switch (mode) {
    case RecoveryMode::None:
        return "none";
    case RecoveryMode::MapAware:
        return "map_aware";
    case RecoveryMode::InputTransform:
        return "input_transform";
    case RecoveryMode::Combined:
        return "combined";
    }
    return "unknown";
}

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t word)
{
    constexpr std::uint64_t kFnvPrime = 1099511628211ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xffull;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fnvMixDouble(std::uint64_t h, double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return fnvMix(h, bits);
}

void
PlannedRecovery::validate() const
{
    if (mode != RecoveryMode::None && !accuracy)
        fatal("PlannedRecovery: mode ", toString(mode),
              " requires an accuracy curve");
    if (faultFreeAccuracy < 0.0 || faultFreeAccuracy > 1.0)
        fatal("PlannedRecovery: faultFreeAccuracy must be in [0,1] "
              "(got ", faultFreeAccuracy, ")");
}

std::uint64_t
weightsDigest(dnn::Network &net)
{
    std::uint64_t h = kFnvOffset;
    for (auto &p : net.params()) {
        const dnn::Tensor &t = *p.value;
        for (std::size_t e = 0; e < t.numel(); ++e) {
            std::uint32_t bits = 0;
            const float f = t[e];
            std::memcpy(&bits, &f, sizeof(bits));
            h = fnvMix(h, bits);
        }
    }
    return h;
}

void
ChipEvalConfig::validate() const
{
    if (numReads < 1)
        fatal("ChipEvalConfig: numReads must be >= 1 (got ", numReads,
              ")");
    if (flipProb < 0.0 || flipProb > 1.0)
        fatal("ChipEvalConfig: flipProb must be in [0,1] (got ",
              flipProb, ")");
    if (numThreads < 0)
        fatal("ChipEvalConfig: numThreads must be >= 0 (got ",
              numThreads, ")");
}

ChipEvaluator::ChipEvaluator(dnn::Network &net,
                             const dnn::Dataset &test_set,
                             sram::VulnerabilityMap map,
                             ChipEvalConfig cfg)
    : net_(net), map_(std::move(map)), cfg_(cfg)
{
    cfg_.validate();
    if (test_set.size() == 0)
        fatal("ChipEvaluator: empty test set");
    const std::size_t n =
        cfg_.maxTestSamples == 0
            ? test_set.size()
            : std::min(cfg_.maxTestSamples, test_set.size());
    evalSet_ = test_set.slice(0, n);
}

void
ChipEvaluator::attachObservability(obs::Observability *o,
                                   obs::Labels labels)
{
    obs_ = o;
    labels_ = std::move(labels);
}

void
ChipEvaluator::ensureScratch(unsigned count)
{
    while (scratch_.size() < count)
        scratch_.push_back(
            std::make_unique<dnn::Network>(net_.clone()));
}

double
ChipEvaluator::baselineAccuracy()
{
    // Quantization round trip with no faults: the chip's error-free
    // ceiling (the iso-accuracy reference of the recovery frontier).
    ensureScratch(1);
    auto spec = fi::InjectionSpec::allWeights();
    spec.flipProb = cfg_.flipProb;
    Rng rng(cfg_.flipSeed);
    corruptNetwork(*scratch_[0], net_, map_, /*fail_prob=*/0.0, spec,
                   cfg_.layout, rng);
    return dnn::SgdTrainer::evaluate(*scratch_[0], evalSet_, 0);
}

ChipAccuracy
ChipEvaluator::evaluate(double fail_prob)
{
    return run(fail_prob, evalSet_.images, "base");
}

ChipAccuracy
ChipEvaluator::evaluateWithTransform(double fail_prob,
                                     InputTransform &tf)
{
    // The transform runs once, serially, on reliable (boosted) input
    // memory; only the weight reads below fault. See the header note
    // on the Table-2 input-floor assumption.
    const dnn::Tensor transformed =
        tf.apply(evalSet_.images, /*train=*/false);
    return run(fail_prob, transformed, "transform");
}

ChipAccuracy
ChipEvaluator::run(double fail_prob, const dnn::Tensor &inputs,
                   const char *kind)
{
    if (fail_prob < 0.0 || fail_prob > 1.0)
        fatal("ChipEvaluator: fail_prob must be in [0,1] (got ",
              fail_prob, ")");

    dnn::Dataset eval;
    eval.images = inputs;
    eval.labels = evalSet_.labels;

    const auto jobs = static_cast<std::size_t>(cfg_.numReads);
    const unsigned threads =
        ThreadPool::resolveThreads(cfg_.numThreads);
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs, threads));
    ensureScratch(std::max(1u, workers));

    auto spec = fi::InjectionSpec::allWeights();
    spec.flipProb = cfg_.flipProb;

    struct ReadResult
    {
        double accuracy = 0.0;
        std::uint64_t flips = 0;
    };
    std::vector<ReadResult> results(jobs);
    // Read r deposits into results[r]; the dynamic schedule never
    // affects the output because reduction happens in read order.
    parallelFor(jobs, static_cast<int>(workers),
                // vblint: allow(VB009, read r writes only results[r]; scratch is slot-exclusive)
                [&](std::size_t r, unsigned slot) {
                    dnn::Network &scratch = *scratch_[slot];
                    Rng flip_rng = Rng(cfg_.flipSeed).split(r);
                    ReadResult out;
                    out.flips = corruptNetwork(scratch, net_, map_,
                                               fail_prob, spec,
                                               cfg_.layout, flip_rng);
                    out.accuracy =
                        dnn::SgdTrainer::evaluate(scratch, eval, 0);
                    results[r] = out;
                });

    // Deterministic reduction in read order: the outcome is a pure
    // function of the per-read results, not of the thread count.
    RunningStats acc;
    RunningStats flips;
    std::uint64_t h = kFnvOffset;
    for (const auto &res : results) {
        acc.add(res.accuracy);
        flips.add(static_cast<double>(res.flips));
        h = fnvMixDouble(h, res.accuracy);
        h = fnvMix(h, res.flips);
    }

    ChipAccuracy out;
    out.meanAccuracy = acc.mean();
    out.stddevAccuracy = acc.stddev();
    out.minAccuracy = acc.min();
    out.maxAccuracy = acc.max();
    out.meanBitFlips = flips.mean();
    out.digest = h;

    if (obs_ != nullptr) {
        obs::Labels l = labels_;
        l["kind"] = kind;
        obs_->metrics.counter("recovery.eval.runs", l).add(1);
        obs_->metrics.counter("recovery.eval.reads", l).add(jobs);
        obs_->metrics.gauge("recovery.eval.mean_accuracy", l)
            .set(out.meanAccuracy);
        obs_->metrics.gauge("recovery.eval.mean_bit_flips", l)
            .set(out.meanBitFlips);
    }
    return out;
}

} // namespace vboost::recovery
