/**
 * @file
 * MATIC-style memory-adaptive training (PAPERS.md: MATIC). Where
 * fi::FaultAwareTrainer hardens a model against the fault *rate* by
 * resampling a fresh vulnerability map every minibatch, MapAwareTrainer
 * freezes ONE chip's profiled sram::VulnerabilityMap — i.i.d. or
 * clustered — into every forward/backward pass, so the optimizer
 * learns around that chip's specific broken cells and tolerates a
 * lower SRAM voltage (a lower boost level) on that chip than any
 * chip-agnostic model can.
 *
 * Two MATIC mechanisms are modeled on top of the straight-through
 * machinery shared with fault-aware training:
 *
 *  - Curriculum voltage descent: the injected bit failure probability
 *    ramps geometrically across epochs from a gentle start to the
 *    deployment rate, mimicking MATIC's staged supply lowering.
 *  - Periodic map refresh: real profiling is not free, so the injected
 *    rate is frozen at its last profiled value and re-snapped to the
 *    curriculum only every refreshInterval batches — training between
 *    refreshes runs against a stale profile, exactly the
 *    profile-then-train loop of the hardware flow.
 */

#ifndef VBOOST_RECOVERY_MAP_AWARE_TRAINER_HPP
#define VBOOST_RECOVERY_MAP_AWARE_TRAINER_HPP

#include <cstdint>
#include <vector>

#include "fi/fault_training.hpp"
#include "obs/observability.hpp"
#include "sram/fault_map.hpp"

namespace vboost::recovery {

/** Configuration of map-aware (per-chip) training. */
struct MapAwareConfig
{
    /** The shared straight-through training knobs: base SGD config,
     *  deployment failProb, flipProb, warmupEpochs, grad/weight clips,
     *  flip-stream seed and cell layout. */
    fi::FaultTrainConfig train;

    /** Seed identifying the chip whose map is frozen into training. */
    std::uint64_t chipSeed = 1234;
    /** Map index of the chip (VulnerabilityMap(chipSeed, chipMapIndex)). */
    std::uint64_t chipMapIndex = 0;
    /** Spatial structure of the chip's fault map. */
    sram::MapModel mapModel = sram::MapModel::Iid;
    /** Defect-process parameters under MapModel::Clustered. */
    sram::ClusterParams cluster;

    /** Batches between profile refreshes (0 = profile once at the
     *  start of injection and never refresh). */
    int refreshInterval = 32;
    /** Epochs of curriculum voltage descent after warmup: the
     *  curriculum rate ramps geometrically from
     *  curriculumStartScale * failProb up to failProb. 0 disables the
     *  ramp (injection starts at the deployment rate). */
    int curriculumEpochs = 2;
    /** Starting fraction of the deployment failProb for the ramp. */
    double curriculumStartScale = 0.125;

    /** Fatals with a usage-style message on invalid values. */
    void validate() const;
};

/** Per-run statistics of map-aware training. */
struct MapAwareStats
{
    /** Per-epoch loss / accuracy (through the corrupted weights). */
    std::vector<dnn::EpochStats> epochs;
    /** Minibatches processed. */
    std::uint64_t batches = 0;
    /** Profile refreshes performed (initial profile included). */
    std::uint64_t mapRefreshes = 0;
    /** Total weight bits flipped across all batches. */
    std::uint64_t bitFlips = 0;
    /** The injected failProb of the last processed batch (equals the
     *  deployment rate once warmup + curriculum have completed and a
     *  refresh has landed). */
    double finalInjectedProb = 0.0;

    /** FNV-1a digest over the per-epoch loss/accuracy bits plus the
     *  batch/refresh/flip counters — the bitwise acceptance value for
     *  determinism tests. */
    std::uint64_t digest() const;
};

/**
 * SGD against one frozen chip map. Forward/backward run through
 * weights corrupted under the chip's VulnerabilityMap at the current
 * (curriculum- and refresh-gated) failure probability; updates apply
 * to the clean parameters (straight-through), with the same gradient
 * clamp and Q-format projection as fi::FaultAwareTrainer. Per-batch
 * flip streams are counter-derived (Rng(seed).split(batch)), so the
 * whole run is bitwise reproducible.
 */
class MapAwareTrainer
{
  public:
    explicit MapAwareTrainer(MapAwareConfig cfg = {});

    /**
     * Train `net` in place against the configured chip map.
     *
     * @param net the network being trained (receives clean updates).
     * @param scratch structurally identical instance holding the
     *        corrupted weights during each batch.
     * @param train_set training data.
     * @param rng shuffling randomness.
     */
    MapAwareStats train(dnn::Network &net, dnn::Network &scratch,
                        const dnn::Dataset &train_set, Rng &rng);

    /** The frozen chip map training runs against. */
    const sram::VulnerabilityMap &chipMap() const { return map_; }

    /** Publish training counters (`recovery.matic.*`) into `o` after
     *  each train() call. Pass nullptr to detach. */
    void attachObservability(obs::Observability *o,
                             obs::Labels labels = {});

    const MapAwareConfig &config() const { return cfg_; }

  private:
    /** Curriculum rate for an epoch (before refresh gating). */
    double curriculumProb(int epoch) const;

    MapAwareConfig cfg_;
    sram::VulnerabilityMap map_;
    obs::Observability *obs_ = nullptr;
    obs::Labels labels_;
};

} // namespace vboost::recovery

#endif // VBOOST_RECOVERY_MAP_AWARE_TRAINER_HPP
