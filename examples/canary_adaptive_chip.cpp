/**
 * @file
 * Per-die adaptive boosting with canary cells: every manufactured die
 * has a different V_min (bitcell variability), so a fixed boost level
 * either wastes energy on good dies or fails bad ones. This example
 * samples Monte-Carlo dies, lets the CanaryController pick each die's
 * minimal safe boost level at a very low supply, and runs chip
 * inference at the chosen level to confirm accuracy — closing the
 * runtime-control loop the paper's related work [22] motivates.
 *
 * Build & run:  ./build/examples/canary_adaptive_chip
 */

#include <iostream>

#include "accel/dante.hpp"
#include "core/canary.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "energy/supply_config.hpp"

using namespace vboost;

namespace {

dnn::Network
makeNet(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Dense>(784, 64, rng, "fc1");
    net.addLayer<dnn::Relu>("relu");
    net.addLayer<dnn::Dense>(64, 10, rng, "fc2");
    return net;
}

} // namespace

int
main()
{
    // Train once; deploy the same model to every die.
    const auto train_set = dnn::makeSyntheticMnist(2000, 1);
    const auto test_set = dnn::makeSyntheticMnist(200, 2);
    auto net = makeNet(7);
    dnn::SgdTrainer trainer;
    Rng rng(3);
    trainer.train(net, train_set, rng);
    dnn::clipParameters(net, 0.5f);

    const auto ctx = core::SimContext::standard();
    core::CanaryController controller(ctx, 16, 64, 0.03_V);
    energy::SupplyConfigurator sc(ctx.tech, ctx.design, 16);
    const Volt vdd{0.38};

    std::cout << "adaptive boosting at Vdd = " << vdd.value()
              << " V, canary margin "
              << controller.margin().value() * 1e3 << " mV\n\n";
    std::cout << "die  chosen-level  Vddv(V)  array-BER  accuracy\n";

    double energy_adaptive = 0.0, energy_static = 0.0;
    for (std::uint64_t die = 0; die < 6; ++die) {
        const sram::VulnerabilityMap map(500 + die, 0);
        const auto level = controller.chooseLevel(vdd, map);
        if (!level) {
            std::cout << " " << die << "   supply too low for this die\n";
            continue;
        }

        accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                              ctx.failure);
        Rng read_rng(die + 1);
        const auto logits = chip.runFcInference(
            net, test_set.images, vdd, {*level, *level}, *level, map,
            read_rng);
        std::size_t correct = 0;
        for (int i = 0; i < logits.dim(0); ++i) {
            int best = 0;
            for (int j = 1; j < logits.dim(1); ++j) {
                if (logits.at(i, j) > logits.at(i, best))
                    best = j;
            }
            correct +=
                best == test_set.labels[static_cast<std::size_t>(i)];
        }
        std::cout << " " << die << "       " << *level << "        "
                  << sc.boostedVoltage(vdd, *level).value() << "   "
                  << controller.arrayFailProbAt(vdd, *level) << "   "
                  << static_cast<double>(correct) /
                         static_cast<double>(test_set.size())
                  << "\n";

        // Compare the per-inference energy against always-Vddv4.
        const energy::Workload w{255000, 340000};
        energy_adaptive +=
            sc.boostedDynamic(w, vdd, *level).total().value();
        energy_static += sc.boostedDynamic(w, vdd, 4).total().value();
    }
    std::cout << "\nadaptive vs always-max-boost energy: "
              << (1.0 - energy_adaptive / energy_static) * 100.0
              << "% saved\n";
    return 0;
}
