/**
 * @file
 * Dante chip demo: run fully connected inference *through* the
 * behavioural chip model — int16 weights staged tile-by-tile into the
 * boosted 128 KB weight memory, activations round-tripping the 16 KB
 * input memory, per-bank boost levels programmed with the
 * set_boost_config instruction — and watch accuracy, energy and
 * instruction counters as the boost level changes at a very low
 * supply voltage.
 *
 * Build & run:  ./build/examples/dante_chip_demo
 */

#include <iostream>

#include "accel/dante.hpp"
#include "core/context.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"

using namespace vboost;

namespace {

dnn::Network
makeNet(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Dense>(784, 96, rng, "fc1");
    net.addLayer<dnn::Relu>("relu1");
    net.addLayer<dnn::Dense>(96, 10, rng, "fc2");
    return net;
}

} // namespace

int
main()
{
    // Train a small model for the demo.
    const auto train_set = dnn::makeSyntheticMnist(2000, 1);
    const auto test_set = dnn::makeSyntheticMnist(256, 2);
    auto net = makeNet(7);
    dnn::SgdTrainer trainer;
    Rng rng(3);
    trainer.train(net, train_set, rng);
    dnn::clipParameters(net, 0.5f);
    std::cout << "float accuracy: "
              << dnn::SgdTrainer::evaluate(net, test_set, 0) << "\n\n";

    // Build the chip exactly as taped out (Table 1).
    const auto ctx = core::SimContext::standard();
    accel::DanteChip chip(accel::DanteConfig::fromTable1(), ctx.tech,
                          ctx.failure);
    std::cout << "chip: " << chip.config().totalMacros()
              << " macros, booster area "
              << chip.boosterArea().value() / 1e6 << " mm^2\n\n";

    const Volt vdd{0.40};
    std::cout << "running at Vdd = " << vdd.value() << " V, "
              << chip.config().frequencyAt(vdd).value() / 1e6
              << " MHz\n\n";
    std::cout << "level  Vddv(V)  accuracy  dyn energy (uJ)  "
                 "boost events  set_boost_config\n";
    for (int level = 0; level <= 4; ++level) {
        chip.resetCounters();
        const sram::VulnerabilityMap map(42, 0);
        Rng read_rng(level + 1);
        const auto logits = chip.runFcInference(
            net, test_set.images, vdd, {level, level}, level, map,
            read_rng);

        std::size_t correct = 0;
        for (int i = 0; i < logits.dim(0); ++i) {
            int best = 0;
            for (int j = 1; j < logits.dim(1); ++j) {
                if (logits.at(i, j) > logits.at(i, best))
                    best = j;
            }
            correct += best ==
                       test_set.labels[static_cast<std::size_t>(i)];
        }
        const auto &wmem = chip.weightMemory();
        std::cout << "  " << level << "     "
                  << wmem.bank(0).effectiveVoltage(vdd).value() << "    "
                  << static_cast<double>(correct) /
                         static_cast<double>(test_set.size())
                  << "      " << chip.dynamicEnergy().value() * 1e6
                  << "          "
                  << wmem.totalCounters().boostEvents << "        "
                  << chip.counters().setBoostConfigInstrs << "\n";
    }

    std::cout << "\nleakage at " << vdd.value()
              << " V: " << chip.leakagePower(vdd).value() * 1e6
              << " uW (idle SRAMs stay at Vdd regardless of level)\n";
    return 0;
}
