/**
 * @file
 * Quickstart: the smallest useful tour of the vboost API.
 *
 * Builds the paper's standard 4-level booster for one SRAM bank,
 * asks it for boosted voltages and per-event energies, converts
 * voltages to bit failure rates with the calibrated failure model,
 * and compares the three supply configurations (single / boosted /
 * dual-LDO) on a toy workload using the paper's energy equations.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/context.hpp"
#include "energy/supply_config.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

int
main()
{
    // One bundle of technology constants, failure-rate calibration and
    // the standard booster design (4 cells x 64 inverters + 10 pF MIM
    // per macro).
    const auto ctx = core::SimContext::standard();

    // A 16-bank (128 KB) boosted memory, as in the Dante weight memory.
    energy::SupplyConfigurator supply(ctx.tech, ctx.design, 16);
    const sram::FailureRateModel failures(ctx.failure);

    const Volt vdd{0.40}; // very-low-voltage chip supply

    std::cout << "Boost levels at Vdd = " << vdd.value() << " V:\n";
    for (int level = 0; level <= supply.levels(); ++level) {
        const Volt vddv = supply.boostedVoltage(vdd, level);
        std::cout << "  level " << level << ": Vddv = " << vddv.value()
                  << " V, bit failure rate = " << failures.rate(vddv)
                  << ", boost energy/access = "
                  << supply.booster().boostEventEnergy(vdd, level).value() *
                         1e15
                  << " fJ\n";
    }

    // A compute-dominated workload (AlexNet-like: 1.7 memory accesses
    // per 100 MACs).
    const energy::Workload workload{17000, 1000000};
    const Volt vddv4 = supply.boostedVoltage(vdd, 4);

    const auto single = supply.singleSupplyDynamic(workload, vddv4);
    const auto boosted = supply.boostedDynamic(workload, vdd, 4);
    const auto dual = supply.dualSupplyDynamic(workload, vddv4, vdd);

    std::cout << "\nDynamic energy for 1M MACs (memory reliable at "
              << vddv4.value() << " V):\n";
    std::cout << "  single supply @ Vddv : "
              << single.total().value() * 1e9 << " nJ\n";
    std::cout << "  dual supply (LDO)    : "
              << dual.total().value() * 1e9 << " nJ\n";
    std::cout << "  boosted (this paper) : "
              << boosted.total().value() * 1e9 << " nJ  ("
              << (1.0 - boosted.total() / dual.total()) * 100.0
              << "% below dual)\n";

    // Leakage per cycle at the paper's 50 MHz VLV clock.
    const Hertz clock = 50.0_MHz;
    std::cout << "\nLeakage energy per cycle:\n";
    std::cout << "  single @ Vddv : "
              << supply.singleSupplyLeakagePerCycle(vddv4, clock).value() *
                     1e15
              << " fJ\n";
    std::cout << "  dual          : "
              << supply.dualSupplyLeakagePerCycle(vddv4, vdd, clock)
                         .value() *
                     1e15
              << " fJ\n";
    std::cout << "  boosted       : "
              << supply.boostedLeakagePerCycle(vdd, clock).value() * 1e15
              << " fJ\n";
    return 0;
}
