/**
 * @file
 * MNIST resilience study: train a fully connected network on the
 * synthetic MNIST task with the built-in trainer, quantize it for
 * int16 deployment, then measure Monte-Carlo inference accuracy
 * across supply voltage with and without SRAM supply boosting —
 * the workflow behind the paper's Fig. 2 and Fig. 13(c), end to end
 * in one small program.
 *
 * Build & run:  ./build/examples/mnist_resilience
 */

#include <iostream>

#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "fi/experiment.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

namespace {

/** A compact FC topology that trains in a couple of seconds. */
dnn::Network
makeNet(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Dense>(784, 128, rng, "fc1");
    net.addLayer<dnn::Relu>("relu1");
    net.addLayer<dnn::Dense>(128, 64, rng, "fc2");
    net.addLayer<dnn::Relu>("relu2");
    net.addLayer<dnn::Dense>(64, 10, rng, "fc3");
    return net;
}

} // namespace

int
main()
{
    // 1. Data and training.
    const auto train_set = dnn::makeSyntheticMnist(3000, 1);
    const auto test_set = dnn::makeSyntheticMnist(800, 2);
    auto net = makeNet(7);

    dnn::TrainConfig tcfg;
    tcfg.epochs = 5;
    tcfg.verbose = true;
    dnn::SgdTrainer trainer(tcfg);
    Rng rng(3);
    trainer.train(net, train_set, rng);

    // 2. Deployment: clip to the accelerator's Q-format range.
    dnn::clipParameters(net, 0.5f);
    std::cout << "float test accuracy: "
              << dnn::SgdTrainer::evaluate(net, test_set, 0) << "\n\n";

    // 3. Monte-Carlo fault injection across voltage.
    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel failures(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);

    fi::ExperimentConfig cfg;
    cfg.numMaps = 10;
    cfg.maxTestSamples = 400;
    cfg.numThreads = 0; // all hardware threads; results are identical
    fi::FaultInjectionRunner runner(net, test_set, cfg);

    std::cout << "Vdd(V)  BER(unboosted)  acc(unboosted)  acc(Vddv4)\n";
    for (double v = 0.34; v <= 0.501; v += 0.02) {
        const Volt vdd{v};
        const auto base = runner.runAtVoltage(
            vdd, failures, fi::InjectionSpec::allWeights());
        const Volt vddv = explorer.boostedVoltage(vdd, 4);
        const auto boosted = runner.runAtVoltage(
            vddv, failures, fi::InjectionSpec::allWeights());
        std::cout << "  " << v << "      " << base.failProb << "      "
                  << base.meanAccuracy << "        "
                  << boosted.meanAccuracy << "\n";
    }

    // 4. Which layers are fragile? (the paper's Fig. 2 selective
    //    injection, at the 0.44 V anchor rate)
    const double f = failures.rate(0.44_V);
    std::cout << "\nselective injection at BER " << f << ":\n";
    std::cout << "  all weights: "
              << runner.run(f, fi::InjectionSpec::allWeights())
                     .meanAccuracy
              << "\n  inputs only: "
              << runner.run(f, fi::InjectionSpec::inputsOnly())
                     .meanAccuracy
              << "\n  first layer: "
              << runner.run(f, fi::InjectionSpec::singleLayer(0))
                     .meanAccuracy
              << "\n  last layer : "
              << runner.run(f, fi::InjectionSpec::singleLayer(2))
                     .meanAccuracy
              << "\n";
    return 0;
}
