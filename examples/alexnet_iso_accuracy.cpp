/**
 * @file
 * Iso-accuracy boost selection for a convolutional network: trains a
 * compact conv net on the synthetic CIFAR task, samples its
 * accuracy-vs-failure-rate curve once, builds an Eyeriss
 * Row-Stationary activity model for its layers, and then uses the
 * TradeoffExplorer to pick — per supply voltage — the cheapest boost
 * level that still meets an accuracy target, comparing the resulting
 * energy against the single-supply and dual-supply alternatives.
 * This is the paper's Fig. 15 methodology on a user-defined network.
 *
 * Build & run:  ./build/examples/alexnet_iso_accuracy
 */

#include <iostream>

#include "accel/dataflow.hpp"
#include "core/context.hpp"
#include "core/tradeoff.hpp"
#include "dnn/dataset.hpp"
#include "dnn/layers.hpp"
#include "dnn/quantize.hpp"
#include "dnn/trainer.hpp"
#include "fi/accuracy_curve.hpp"
#include "sram/failure_model.hpp"

using namespace vboost;

namespace {

/** Compact 3-conv-layer network, ~15 s of training on one core. */
dnn::Network
makeNet(std::uint64_t seed)
{
    Rng rng(seed);
    dnn::Network net;
    net.addLayer<dnn::Conv2d>(3, 8, 5, 2, rng, "conv1");
    net.addLayer<dnn::Relu>("relu1");
    net.addLayer<dnn::MaxPool2d>("pool1");
    net.addLayer<dnn::Conv2d>(8, 16, 3, 1, rng, "conv2");
    net.addLayer<dnn::Relu>("relu2");
    net.addLayer<dnn::MaxPool2d>("pool2");
    net.addLayer<dnn::Conv2d>(16, 16, 3, 1, rng, "conv3");
    net.addLayer<dnn::Relu>("relu3");
    net.addLayer<dnn::MaxPool2d>("pool3");
    net.addLayer<dnn::Flatten>("flatten");
    net.addLayer<dnn::Dense>(16 * 4 * 4, 10, rng, "fc");
    return net;
}

/** Conv geometry of makeNet(), for the RS activity model. */
std::vector<dnn::ConvLayerDims>
convDims()
{
    return {{3, 8, 5, 32, 32, 32, 32},
            {8, 16, 3, 16, 16, 16, 16},
            {16, 16, 3, 8, 8, 8, 8}};
}

} // namespace

int
main()
{
    // Train and deploy.
    const auto train_set = dnn::makeSyntheticCifar(1200, 1);
    const auto test_set = dnn::makeSyntheticCifar(300, 2);
    auto net = makeNet(7);
    dnn::TrainConfig tcfg;
    tcfg.epochs = 3;
    tcfg.learningRate = 0.05;
    tcfg.verbose = true;
    dnn::SgdTrainer trainer(tcfg);
    Rng rng(3);
    trainer.train(net, train_set, rng);
    dnn::clipParameters(net, 0.5f);

    // Accuracy-vs-failure-rate curve (sampled once, then interpolated).
    fi::ExperimentConfig cfg;
    cfg.numMaps = 6;
    cfg.maxTestSamples = 300;
    fi::FaultInjectionRunner runner(net, test_set, cfg);
    const auto curve = fi::AccuracyCurve::sample(
        runner, fi::InjectionSpec::allWeights(), 1e-5, 0.3, 7);
    const double target = curve.faultFree() - 0.02;
    std::cout << "fault-free accuracy " << curve.faultFree()
              << ", target " << target << "\n\n";

    // Row-Stationary global-buffer activity for this network.
    const accel::EyerissRsModel rs;
    const auto total =
        accel::totalActivity(rs.networkActivity(convDims()));
    const energy::Workload workload{total.totalAccesses(), total.macs};
    std::cout << "workload: " << total.macs << " MACs, "
              << total.totalAccesses() << " buffer accesses (ratio "
              << total.accessRatio() * 100 << "%)\n\n";

    // Iso-accuracy operating points.
    const auto ctx = core::SimContext::standard();
    const sram::FailureRateModel failures(ctx.failure);
    core::TradeoffExplorer explorer(ctx, 16);
    const auto oracle = [&](Volt vddv) {
        return curve.at(failures.rate(vddv));
    };

    std::cout
        << "Vdd(V)  level  Vddv(V)  accuracy  boost(nJ)  dual(nJ)\n";
    for (double v = 0.34; v <= 0.47; v += 0.02) {
        const auto op = explorer.isoAccuracyPoint(Volt(v), target,
                                                  oracle, workload);
        if (!op) {
            std::cout << "  " << v << "   target unreachable\n";
            continue;
        }
        std::cout << "  " << v << "     " << op->level << "     "
                  << op->vddv.value() << "    " << op->accuracy
                  << "      " << op->boostedEnergy.value() * 1e9
                  << "     " << op->dualEnergy.value() * 1e9 << "\n";
    }
    return 0;
}
