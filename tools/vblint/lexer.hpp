/**
 * @file
 * Token-level front end of vblint (DESIGN.md §10). Produces a stream of
 * code tokens with line numbers, a list of preprocessor directives, and
 * every `// vblint: ...` annotation comment found in the source. The
 * lexer strips comments, string/char literals and preprocessor lines
 * from the token stream so the rule passes in analyzer.cpp never match
 * banned identifiers inside strings or docs.
 */

#ifndef VBOOST_VBLINT_LEXER_HPP
#define VBOOST_VBLINT_LEXER_HPP

#include <string>
#include <vector>

namespace vboost::vblint {

/** Token classes the rule passes distinguish. */
enum class TokKind { Ident, Number, Punct, Str };

/** One code token. Multi-char operators `::`, `+=`, `-=`, `->`, `++`,
 *  `--`, `==`, `!=`, `<=`, `>=` are single tokens; everything else is
 *  one character per token. String and character literals are single
 *  Str tokens whose text keeps the surrounding quotes, so a literal
 *  can never be mistaken for a keyword or punctuation by the rule
 *  passes, while passes that need literal contents (VB008 metric-name
 *  matching) can compare the quoted text. */
struct Token
{
    TokKind kind;
    std::string text;
    int line;
};

/** One preprocessor logical line (backslash continuations joined). */
struct Directive
{
    int line;
    /** Directive text starting at '#', inner whitespace collapsed,
     *  trailing `//` comment stripped. */
    std::string text;
};

/** One `// vblint: ...` annotation comment. */
struct RawAnnotation
{
    /** Line the comment starts on. */
    int line;
    /** Text after "vblint:", trimmed. */
    std::string text;
    /** True when code tokens precede the comment on the same line (a
     *  trailing annotation suppresses its own line; an own-line
     *  annotation suppresses the next code line). */
    bool trailing;
    /** Index into the token stream of the first token after the
     *  comment (== tokens.size() when none follow). */
    std::size_t nextTokenIndex;
};

/** Full lexer output for one source file. */
struct LexedSource
{
    std::vector<Token> tokens;
    std::vector<Directive> directives;
    std::vector<RawAnnotation> annotations;
    /** Raw source split into lines (1-based access via line(n)). */
    std::vector<std::string> lines;

    /** Trimmed text of 1-based line n ("" when out of range). */
    std::string line(int n) const;
};

/** Tokenize one translation unit. Never fails: unterminated literals
 *  and comments are closed at end of file. */
LexedSource lex(const std::string &content);

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_LEXER_HPP
