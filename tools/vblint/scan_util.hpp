/**
 * @file
 * Small token/path helpers shared by the per-file rule passes
 * (analyzer.cpp) and the project-model passes (project_model.cpp,
 * project_rules.cpp). Header-only: these are tiny pure functions and
 * splitting them into a TU would buy nothing.
 */

#ifndef VBOOST_VBLINT_SCAN_UTIL_HPP
#define VBOOST_VBLINT_SCAN_UTIL_HPP

#include <algorithm>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace vboost::vblint {

inline std::vector<std::string>
pathComponents(const std::string &path)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

inline bool
hasComponent(const std::vector<std::string> &comps, const std::string &c)
{
    return std::find(comps.begin(), comps.end(), c) != comps.end();
}

/** Model code: everything under src/ (bench/, examples/, tools/ and
 *  tests/ are CLI/driver layers where wall clocks are legitimate). */
inline bool
isModelCode(const std::vector<std::string> &comps)
{
    return !comps.empty() && comps.front() == "src";
}

inline bool
isModelCodePath(const std::string &path)
{
    return isModelCode(pathComponents(path));
}

inline bool
isHeaderPath(const std::string &path)
{
    auto ends = [&](const char *suf) {
        const std::string s(suf);
        return path.size() >= s.size() &&
               path.compare(path.size() - s.size(), s.size(), s) == 0;
    };
    return ends(".hpp") || ends(".h") || ends(".hh");
}

/** Collapse tabs/space runs to single spaces (baseline key normal form). */
inline std::string
normalizeWs(const std::string &s)
{
    std::string out;
    bool in_ws = false;
    for (char c : s) {
        if (c == ' ' || c == '\t') {
            in_ws = true;
            continue;
        }
        if (in_ws && !out.empty())
            out.push_back(' ');
        in_ws = false;
        out.push_back(c);
    }
    return out;
}

/** Skip a balanced <...> template argument list; returns the index
 *  just past the closing '>' (or `from` when not at a '<'). */
inline std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t from)
{
    if (from >= toks.size() || toks[from].text != "<")
        return from;
    int depth = 0;
    std::size_t i = from;
    // Bounded walk: a pathological '<' (comparison) gives up quickly.
    const std::size_t limit = std::min(toks.size(), from + 256);
    for (; i < limit; ++i) {
        if (toks[i].text == "<")
            ++depth;
        else if (toks[i].text == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (toks[i].text == ";")
            return from; // not a template argument list
    }
    return from;
}

/** Index just past the ')' matching the '(' at `open` (tokens.size()
 *  when unbalanced). @pre toks[open].text == "(". */
inline std::size_t
skipParens(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "(")
            ++depth;
        else if (toks[i].text == ")") {
            if (--depth == 0)
                return i + 1;
        }
    }
    return toks.size();
}

/** Index just past the '}' matching the '{' at `open` (tokens.size()
 *  when unbalanced). @pre toks[open].text == "{". */
inline std::size_t
skipBraces(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "{")
            ++depth;
        else if (toks[i].text == "}") {
            if (--depth == 0)
                return i + 1;
        }
    }
    return toks.size();
}

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_SCAN_UTIL_HPP
