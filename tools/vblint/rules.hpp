/**
 * @file
 * Rule registry of vblint: identifiers, one-line summaries and the
 * long-form rationale printed by `vblint --explain <rule>`. The rule
 * set encodes the repo's §7 determinism discipline (DESIGN.md) as
 * named, suppressible diagnostics.
 */

#ifndef VBOOST_VBLINT_RULES_HPP
#define VBOOST_VBLINT_RULES_HPP

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace vboost::vblint {

enum class Rule {
    VB001, ///< banned nondeterminism source in model code
    VB002, ///< iteration over an unordered container
    VB003, ///< floating-point += in a loop without assoc-ok
    VB004, ///< mutable static / global state
    VB005, ///< header hygiene (guard, using-namespace)
    VB006, ///< module layering violation in the include graph
    VB007, ///< RNG-stream discipline (std RNG / ad-hoc seed arithmetic)
    VB008, ///< fingerprint hygiene (wall-clock metrics, parallel sums)
    VB009, ///< shared-mutable capture into a thread-pool lambda
    VB900, ///< unused vblint suppression
    VB901, ///< malformed vblint annotation
};

/** Canonical name, e.g. "VB001". */
std::string ruleName(Rule r);

/** Parse "VB001" (case-insensitive) back to a rule. */
std::optional<Rule> ruleFromName(const std::string &name);

/** One-line summary used in reports. */
std::string ruleSummary(Rule r);

/** Long-form rationale + how to fix / waive, for --explain. */
std::string ruleExplanation(Rule r);

/** Every rule, in report order. */
const std::vector<Rule> &allRules();

/** Free functions whose call is a banned nondeterminism source under
 *  VB001 (rand(), time(), ...). Shared with the project-model taint
 *  analysis, which marks files containing any of these as
 *  wall-clock-coupled for VB008. */
const std::set<std::string> &bannedCallIdents();

/** Type names that are banned nondeterminism sources under VB001
 *  (random_device, system_clock, ...). */
const std::set<std::string> &bannedTypeIdents();

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_RULES_HPP
