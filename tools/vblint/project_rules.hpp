/**
 * @file
 * Pass 2 project rules of vblint v2 (DESIGN.md §10): the cross-file
 * checks that need the project model — VB006 (include-graph layering),
 * VB007 (RNG-stream discipline), VB008 (fingerprint hygiene) and VB009
 * (shared-mutable captures into thread-pool lambdas). Per-file rules
 * VB001–VB005 stay in analyzer.cpp; analyzeAll merges both diagnostic
 * streams before waiver/baseline resolution.
 */

#ifndef VBOOST_VBLINT_PROJECT_RULES_HPP
#define VBOOST_VBLINT_PROJECT_RULES_HPP

#include <vector>

#include "analyzer.hpp"
#include "project_model.hpp"

namespace vboost::vblint {

/** Run VB006–VB009 over the model; diagnostics are appended to `out`
 *  (Active status; annotation/baseline resolution happens later). */
void runProjectRules(const ProjectModel &model,
                     std::vector<Diagnostic> &out);

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_PROJECT_RULES_HPP
