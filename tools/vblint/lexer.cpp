#include "lexer.hpp"

#include <cctype>

namespace vboost::vblint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Collapse runs of whitespace to single spaces. */
std::string
collapse(const std::string &s)
{
    std::string out;
    bool in_ws = false;
    for (char c : s) {
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\\') {
            in_ws = true;
            continue;
        }
        if (in_ws && !out.empty())
            out.push_back(' ');
        in_ws = false;
        out.push_back(c);
    }
    return out;
}

const char *kVblintMarker = "vblint:";

} // namespace

std::string
LexedSource::line(int n) const
{
    if (n < 1 || static_cast<std::size_t>(n) > lines.size())
        return "";
    return trim(lines[static_cast<std::size_t>(n) - 1]);
}

LexedSource
lex(const std::string &content)
{
    LexedSource out;

    // Split raw lines first so diagnostics can quote the source.
    {
        std::string cur;
        for (char c : content) {
            if (c == '\n') {
                out.lines.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(c);
            }
        }
        if (!cur.empty())
            out.lines.push_back(cur);
    }

    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    bool at_line_start = true; // only whitespace seen since last newline

    auto recordComment = [&](int start_line, const std::string &body,
                             bool trailing) {
        const std::string t = trim(body);
        const std::size_t pos = t.find(kVblintMarker);
        if (pos != 0)
            return; // ordinary comment
        RawAnnotation a;
        a.line = start_line;
        a.text = trim(t.substr(std::string(kVblintMarker).size()));
        a.trailing = trailing;
        a.nextTokenIndex = out.tokens.size(); // patched below: tokens
                                              // after this comment start
                                              // exactly here
        out.annotations.push_back(a);
    };

    while (i < n) {
        const char c = content[i];

        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            continue;
        }

        // Preprocessor directive: '#' first on the line; join
        // backslash continuations into one logical line. A trailing
        // `// ...` comment ends the directive text and is recorded as
        // an ordinary (possibly vblint-annotation) comment, so a
        // waiver can ride on an #include line.
        if (c == '#' && at_line_start) {
            const int start_line = line;
            std::string text;
            bool tail_comment = false;
            while (i < n) {
                if (content[i] == '\\' && i + 1 < n &&
                    content[i + 1] == '\n') {
                    text.push_back(' ');
                    i += 2;
                    ++line;
                    continue;
                }
                if (content[i] == '/' && i + 1 < n &&
                    content[i + 1] == '/') {
                    tail_comment = true;
                    break;
                }
                if (content[i] == '\n')
                    break;
                text.push_back(content[i]);
                ++i;
            }
            out.directives.push_back({start_line, collapse(text)});
            if (tail_comment) {
                const int comment_line = line;
                std::string body;
                i += 2;
                while (i < n && content[i] != '\n') {
                    body.push_back(content[i]);
                    ++i;
                }
                // Trailing by construction: the directive precedes it
                // on the same line (tokens.back() cannot witness that,
                // directives never emit tokens).
                recordComment(comment_line, body, /*trailing=*/true);
            }
            continue;
        }

        // Line comment (and vblint annotations). A backslash
        // immediately before the newline splices the next physical
        // line into the comment, exactly as the preprocessor would.
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            const int start_line = line;
            const bool trailing =
                !out.tokens.empty() && out.tokens.back().line == line;
            std::string body;
            i += 2;
            while (i < n) {
                if (content[i] == '\\' && i + 1 < n &&
                    content[i + 1] == '\n') {
                    body.push_back(' ');
                    i += 2;
                    ++line;
                    continue;
                }
                if (content[i] == '\n')
                    break;
                body.push_back(content[i]);
                ++i;
            }
            recordComment(start_line, body, trailing);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            const int start_line = line;
            const bool trailing =
                !out.tokens.empty() && out.tokens.back().line == line;
            std::string body;
            i += 2;
            while (i + 1 < n &&
                   !(content[i] == '*' && content[i + 1] == '/')) {
                if (content[i] == '\n')
                    ++line;
                body.push_back(content[i]);
                ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            recordComment(start_line, body, trailing);
            continue;
        }

        at_line_start = false;

        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && content[j] != '(' && delim.size() < 16) {
                delim.push_back(content[j]);
                ++j;
            }
            if (j < n && content[j] == '(') {
                const int start_line = line;
                const std::string closer = ")" + delim + "\"";
                std::size_t end = content.find(closer, j + 1);
                if (end == std::string::npos)
                    end = n;
                else
                    end += closer.size();
                for (std::size_t k = i; k < end && k < n; ++k)
                    if (content[k] == '\n')
                        ++line;
                out.tokens.push_back({TokKind::Str,
                                      content.substr(i, end - i),
                                      start_line});
                i = end;
                continue;
            }
            // Not a raw string after all: fall through as identifier.
        }

        // String / char literal: one Str token, quotes included.
        if (c == '"' || c == '\'') {
            const char quote = c;
            const std::size_t start = i;
            const int start_line = line;
            ++i;
            while (i < n) {
                if (content[i] == '\\' && i + 1 < n) {
                    i += 2;
                    continue;
                }
                if (content[i] == '\n') {
                    ++line; // unterminated; keep the line count right
                    ++i;
                    break;
                }
                if (content[i] == quote) {
                    ++i;
                    break;
                }
                ++i;
            }
            out.tokens.push_back(
                {TokKind::Str, content.substr(start, i - start), start_line});
            continue;
        }

        if (isIdentStart(c)) {
            std::string text;
            while (i < n && isIdentChar(content[i])) {
                text.push_back(content[i]);
                ++i;
            }
            out.tokens.push_back({TokKind::Ident, text, line});
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string text;
            // Good enough for a lint: digits, dots, exponents, suffixes
            // and digit separators lex as one blob.
            while (i < n &&
                   (isIdentChar(content[i]) || content[i] == '.' ||
                    content[i] == '\'' ||
                    ((content[i] == '+' || content[i] == '-') && i > 0 &&
                     (content[i - 1] == 'e' || content[i - 1] == 'E')))) {
                text.push_back(content[i]);
                ++i;
            }
            out.tokens.push_back({TokKind::Number, text, line});
            continue;
        }

        // Punctuation; merge the few multi-char operators the rules
        // care about (and whose split forms would confuse them).
        static const char *kTwoChar[] = {"::", "+=", "-=", "->", "++",
                                         "--", "==", "!=", "<=", ">="};
        std::string text(1, c);
        if (i + 1 < n) {
            const std::string two{c, content[i + 1]};
            for (const char *op : kTwoChar) {
                if (two == op) {
                    text = two;
                    break;
                }
            }
        }
        i += text.size();
        out.tokens.push_back({TokKind::Punct, text, line});
    }

    return out;
}

} // namespace vboost::vblint
