/**
 * @file
 * Output back end of vblint: compiler-style text diagnostics, the
 * auditable suppression inventory, and the machine-readable JSON
 * report (emitted through the same bench/json_writer.hpp the smoke
 * benches use, so CI artifacts share one JSON dialect).
 */

#ifndef VBOOST_VBLINT_REPORT_HPP
#define VBOOST_VBLINT_REPORT_HPP

#include <ostream>

#include "analyzer.hpp"

namespace vboost::vblint {

/** Compiler-style `file:line: RULE: message` lines. When `all` is
 *  false only active (build-failing) diagnostics are printed. */
void printText(std::ostream &os, const RepoReport &report, bool all);

/** One line per suppression: location, rule, reason, liveness. */
void printSuppressions(std::ostream &os, const RepoReport &report);

/** Summary counts (always printed after the diagnostics). */
void printSummary(std::ostream &os, const RepoReport &report);

/** Full machine-readable report. */
void writeJson(std::ostream &os, const RepoReport &report,
               const std::string &root);

/** GitHub Actions workflow commands: `::error file=,line=,title=` for
 *  every active diagnostic and `::warning` for stale baseline entries,
 *  so findings surface as inline PR annotations (same pattern as
 *  tools/bench_compare). Values are escaped per the workflow-command
 *  rules (%25 %0D %0A, plus %2C %3A in properties). */
void printGithubAnnotations(std::ostream &os, const RepoReport &report);

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_REPORT_HPP
