/**
 * @file
 * vblint analysis engine (DESIGN.md §10): two passes over the scanned
 * file set. Pass 1 (project_model.hpp) lexes every file once and
 * builds the project model — include graph plus symbol index. Pass 2
 * runs the per-file rules (VB001–VB005, here) and the project rules
 * (VB006–VB009, project_rules.hpp) over that model, then resolves
 * `// vblint:` suppressions and the content-keyed baseline. Exposed as
 * a library so tests/test_vblint.cpp feeds synthetic snippets through
 * the exact production code path, and so the CLI stays a thin shell.
 *
 * Scoping is path-based and uniform: VB001/VB003/VB004 and the
 * project rules apply to all model code (paths under src/, no
 * per-directory lists); VB002 applies everywhere scanned; VB005 to
 * headers. Paths are repo-relative, which keeps diagnostics and the
 * baseline file stable regardless of the invocation directory.
 */

#ifndef VBOOST_VBLINT_ANALYZER_HPP
#define VBOOST_VBLINT_ANALYZER_HPP

#include <string>
#include <vector>

#include "rules.hpp"

namespace vboost::vblint {

/** Lifecycle of one finding through the waiver machinery. */
enum class DiagStatus { Active, Suppressed, Baselined };

struct Diagnostic
{
    std::string file; ///< repo-relative path
    int line = 0;
    Rule rule = Rule::VB001;
    std::string message;
    DiagStatus status = DiagStatus::Active;
    /** Trimmed source text of the flagged line (the baseline key, so
     *  waivers survive unrelated line-number churn). */
    std::string sourceLine;
};

/** One parsed suppression, for the auditable waiver inventory. */
struct Suppression
{
    std::string file;
    int line = 0;      ///< line of the annotation comment
    int targetLine = 0; ///< line it suppresses
    Rule rule = Rule::VB001;
    std::string reason;
    bool used = false;
};

struct FileAnalysis
{
    std::vector<Diagnostic> diagnostics;
    std::vector<Suppression> suppressions;
};

/**
 * Analyze one source file.
 *
 * @param path repo-relative path (drives rule scoping).
 * @param content full source text.
 * @param sibling_header content of the paired header (same stem) when
 *        analyzing a .cpp — its declarations seed the per-file type
 *        environment (unordered containers, float-like members) so
 *        member accumulations in the .cpp resolve correctly.
 */
FileAnalysis analyzeSource(const std::string &path,
                           const std::string &content,
                           const std::string &sibling_header = "");

/** `file|rule|collapsed source text` waiver, parsed from baseline.txt. */
struct BaselineEntry
{
    std::string file;
    std::string rule;
    std::string sourceLine;
};

/** Parse a baseline file's content (see tools/vblint/baseline.txt for
 *  the format); malformed lines are reported into `errors`. */
std::vector<BaselineEntry> parseBaseline(const std::string &content,
                                         std::vector<std::string> &errors);

/** Serialize diagnostics into baseline format (active ones only). */
std::string formatBaseline(const std::vector<Diagnostic> &diags);

/** Aggregated result over a file set. */
struct RepoReport
{
    std::vector<Diagnostic> diagnostics;
    std::vector<Suppression> suppressions;
    /** Baseline entries that matched nothing (stale waivers). */
    std::vector<BaselineEntry> staleBaseline;
    int filesScanned = 0;

    int countWithStatus(DiagStatus s) const;
    /** Diagnostics neither suppressed inline nor baselined. */
    int activeCount() const { return countWithStatus(DiagStatus::Active); }
};

/**
 * Analyze a set of already-loaded files and apply a baseline. Inputs
 * must be ordered (path, content[, sibling]) triples; the report keeps
 * that order. Used by both the CLI (which loads from disk) and the
 * self-check test.
 */
struct SourceInput
{
    std::string path;
    std::string content;
    std::string siblingHeader;
};

RepoReport analyzeAll(const std::vector<SourceInput> &inputs,
                      const std::vector<BaselineEntry> &baseline);

/** Result of rebuilding the baseline from a report (--update-baseline). */
struct BaselineUpdate
{
    /** New baseline file content: every Active and Baselined finding,
     *  suppressed ones excluded. */
    std::string content;
    int added = 0; ///< Active findings newly entering the baseline
    int kept = 0;  ///< Baselined findings retained
    int pruned = 0; ///< stale entries dropped (CLI exits nonzero)
    std::vector<BaselineEntry> prunedEntries;
};

BaselineUpdate updateBaseline(const RepoReport &report);

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_ANALYZER_HPP
