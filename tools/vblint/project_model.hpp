/**
 * @file
 * Pass 1 of the vblint v2 analyzer (DESIGN.md §10): lex every scanned
 * file exactly once and build a project-wide model — the include graph
 * plus a lightweight symbol index over the determinism-critical APIs.
 * The rule passes in analyzer.cpp (per-file) and project_rules.cpp
 * (cross-file) then run over this model.
 *
 * The symbol index is discovered structurally, never from hardcoded
 * name lists: a "stream class" is any class with a split() member, a
 * "registry class" any class with an excludeFromFingerprint() member,
 * a "pool class" any class holding std::thread members, and so on. A
 * renamed or newly added helper is picked up automatically, and the
 * test fixtures exercise the rules with their own synthetic classes.
 */

#ifndef VBOOST_VBLINT_PROJECT_MODEL_HPP
#define VBOOST_VBLINT_PROJECT_MODEL_HPP

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "include_graph.hpp"
#include "lexer.hpp"

namespace vboost::vblint {

/** One function declaration/definition found by the decl scanner. */
struct FnDecl
{
    std::string name;
    /** Return-type tokens before the name (qualifiers included;
     *  empty for constructors). */
    std::vector<std::string> ret;
    /** Parameter-list tokens between the parens. */
    std::vector<std::string> params;
    /** Enclosing (or qualifying, for out-of-class definitions) class
     *  name; "" for free functions. */
    std::string klass;
    bool isPublic = true;
    bool hasBody = false;
    /** Token range of the body `{...}` when hasBody (indices into the
     *  owning file's token stream; bodyBegin at '{'). */
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;
    std::string file;
    int line = 0;
};

/** One class/struct with a braced body found by the decl scanner. */
struct ClassDecl
{
    std::string name;
    std::string file;
    int line = 0;
    /** Body mentions std::thread — the class owns threads. */
    bool hasStdThreadMember = false;
    /** Member function names (any access). */
    std::set<std::string> memberNames;
};

/** Determinism-critical APIs discovered from the scanned sources. */
struct SymbolIndex
{
    /** Classes with a split() member: counter-based RNG streams. */
    std::set<std::string> streamClasses;
    /** Free functions returning uint64_t from scalar-only params: the
     *  blessed hash/threshold helpers (mix64, cellHash, ...). */
    std::set<std::string> hashHelpers;
    /** Classes with an excludeFromFingerprint() member. */
    std::set<std::string> registryClasses;
    /** Public members of registry classes returning a handle class
     *  declared in the same file (counter/sum/gauge/histogram). */
    std::set<std::string> registrationMethods;
    /** Classes owning std::thread members. */
    std::set<std::string> poolClasses;
    /** Pool-class public members — and free functions declared beside
     *  a pool class — that accept a callable (`function` in params):
     *  submit, parallelFor. */
    std::set<std::string> poolEntryPoints;
    /** Non-void free functions declared in a file group whose sources
     *  touch a VB001-banned wall-clock/random symbol: their return
     *  values are wall-clock coupled (rateLimitedWarnStats). */
    std::set<std::string> wallClockTainted;

    /** File stems (path minus extension) declaring stream classes or
     *  hash helpers: their own implementations are exempt from VB007. */
    std::set<std::string> providerStems;
    /** File stems declaring registry classes (exempt from VB008). */
    std::set<std::string> registryStems;
    /** File stems declaring pool classes (exempt from VB009). */
    std::set<std::string> poolStems;
};

/** One lexed scanned file. */
struct LexedFile
{
    std::string path;
    LexedSource lex;
    /** Index into ProjectModel::files of the paired header lexed for
     *  the declaration environment; -1 when none. */
    int siblingIndex = -1;
    /** True for sibling-header content lexed for the index only (its
     *  path was not a scanned input): no diagnostics are emitted
     *  against synthetic files and they add no include edges. */
    bool synthetic = false;
};

/** Everything pass 2 runs over. */
struct ProjectModel
{
    std::vector<LexedFile> files; ///< inputs first, synthetic appended
    IncludeGraph includes;        ///< over non-synthetic files
    SymbolIndex symbols;
    std::vector<FnDecl> functions;
    std::vector<ClassDecl> classes;
};

/** Path minus a trailing .cpp/.cc/.hpp/.h/.hh extension. */
std::string fileStem(const std::string &path);

/** Build the model: lex every input (and unpaired sibling headers),
 *  scan declarations, derive the symbol index and include graph. */
ProjectModel buildProjectModel(const std::vector<SourceInput> &inputs);

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_PROJECT_MODEL_HPP
