#include "project_rules.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "scan_util.hpp"

namespace vboost::vblint {

namespace {

void
report(std::vector<Diagnostic> &out, const LexedFile &f, Rule rule,
       int line, std::string message)
{
    Diagnostic d;
    d.file = f.path;
    d.line = line;
    d.rule = rule;
    d.message = std::move(message);
    d.sourceLine = f.lex.line(line);
    out.push_back(std::move(d));
}

// ------------------------------------------------------------- VB006

void
checkLayering(const ProjectModel &model,
              const std::map<std::string, const LexedFile *> &byPath,
              std::vector<Diagnostic> &out)
{
    for (const IncludeEdge &e : model.includes.edges) {
        const std::string fromModule = moduleOfPath(e.fromFile);
        if (fromModule.empty())
            continue; // layering is enforced for src/<module>/ files
        const auto fit = byPath.find(e.fromFile);
        if (fit == byPath.end())
            continue;
        const LexedFile &f = *fit->second;

        if (e.kind == IncludeKind::Computed) {
            report(out, f, Rule::VB006, e.line,
                   "computed #include in model code — the layering "
                   "check cannot resolve its target (see --explain "
                   "VB006)");
            continue;
        }
        if (e.kind == IncludeKind::Angled)
            continue; // system/toolchain header

        const std::string toPath =
            e.resolvedFile.empty() ? "src/" + e.target : e.resolvedFile;
        const std::string toModule = moduleOfPath(toPath);
        if (toModule.empty()) {
            report(out, f, Rule::VB006, e.line,
                   "quoted include \"" + e.target +
                       "\" does not land in the src/<module>/ tree "
                       "(see --explain VB006)");
            continue;
        }
        if (fromModule == toModule)
            continue;
        const int fromTier = moduleTier(fromModule);
        const int toTier = moduleTier(toModule);
        if (fromTier < 0) {
            report(out, f, Rule::VB006, e.line,
                   "module '" + fromModule +
                       "' is missing from the layering tier table "
                       "(tools/vblint/include_graph.cpp; see --explain "
                       "VB006)");
            continue;
        }
        if (toTier < 0) {
            report(out, f, Rule::VB006, e.line,
                   "module '" + toModule +
                       "' is missing from the layering tier table "
                       "(tools/vblint/include_graph.cpp; see --explain "
                       "VB006)");
            continue;
        }
        if (toTier > fromTier) {
            report(out, f, Rule::VB006, e.line,
                   "layering back-edge: " + fromModule + " (tier " +
                       std::to_string(fromTier) + ") includes " +
                       toModule + " (tier " + std::to_string(toTier) +
                       ") above it (see --explain VB006)");
        } else if (toTier == fromTier) {
            report(out, f, Rule::VB006, e.line,
                   "same-tier cross-module include: " + fromModule +
                       " -> " + toModule + " (both tier " +
                       std::to_string(fromTier) +
                       "); one must move down (see --explain VB006)");
        }
    }

    for (const std::vector<std::string> &cycle :
         findIncludeCycles(model.includes)) {
        if (cycle.empty())
            continue;
        // Attach the diagnostic to the first edge of the cycle.
        const std::string &from = cycle.front();
        const std::string &next = cycle.size() > 1 ? cycle[1] : from;
        const auto fit = byPath.find(from);
        if (fit == byPath.end())
            continue;
        int line = 1;
        const auto oit = model.includes.resolvedOut.find(from);
        if (oit != model.includes.resolvedOut.end()) {
            for (std::size_t ei : oit->second) {
                if (model.includes.edges[ei].resolvedFile == next) {
                    line = model.includes.edges[ei].line;
                    break;
                }
            }
        }
        std::string path;
        for (const std::string &f : cycle)
            path += f + " -> ";
        path += from;
        report(out, *fit->second, Rule::VB006, line,
               "include cycle: " + path + " (see --explain VB006)");
    }
}

// ------------------------------------------------------------- VB007

const std::set<std::string> &
stdEngineIdents()
{
    static const std::set<std::string> kEngines = {
        "mt19937",          "mt19937_64",
        "minstd_rand",      "minstd_rand0",
        "ranlux24",         "ranlux48",
        "ranlux24_base",    "ranlux48_base",
        "knuth_b",          "default_random_engine",
        "mersenne_twister_engine", "linear_congruential_engine",
        "subtract_with_carry_engine", "shuffle_order_engine",
        "independent_bits_engine", "discard_block_engine",
        "seed_seq"};
    return kEngines;
}

bool
endsWith(const std::string &s, const char *suf)
{
    const std::string t(suf);
    return s.size() >= t.size() &&
           s.compare(s.size() - t.size(), t.size(), t) == 0;
}

void
checkRngDiscipline(const ProjectModel &model, const LexedFile &f,
                   std::vector<Diagnostic> &out)
{
    const SymbolIndex &sym = model.symbols;
    const auto &toks = f.lex.tokens;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const std::string &t = toks[i].text;
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        if (prev == "." || prev == "->")
            continue;

        if (stdEngineIdents().count(t) || endsWith(t, "_distribution")) {
            report(out, f, Rule::VB007, toks[i].line,
                   "std random engine/distribution '" + t +
                       "' in model code — draw sequences are "
                       "library-dependent (use the project stream "
                       "classes; see --explain VB007)");
            continue;
        }

        // Stream constructor with ad-hoc seed arithmetic.
        if (sym.streamClasses.count(t) && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            const std::size_t end = skipParens(toks, i + 1);
            static const char *kArith[] = {"+", "-", "*", "/", "%", "^"};
            for (std::size_t j = i + 2; j + 1 < end; ++j) {
                // Arithmetic inside a blessed hash helper is its job.
                if (toks[j].kind == TokKind::Ident &&
                    sym.hashHelpers.count(toks[j].text) &&
                    j + 1 < end && toks[j + 1].text == "(") {
                    j = skipParens(toks, j + 1) - 1;
                    continue;
                }
                const bool arith = std::any_of(
                    std::begin(kArith), std::end(kArith),
                    [&](const char *op) { return toks[j].text == op; });
                if (arith) {
                    report(out, f, Rule::VB007, toks[j].line,
                           "ad-hoc seed arithmetic in a " + t +
                               "(...) stream constructor — derive "
                               "streams via split(counter) or the "
                               "blessed hash helpers (see --explain "
                               "VB007)");
                    break;
                }
            }
        }
    }
}

// ------------------------------------------------------------- VB008

/** First string-literal argument right after the call's '(' ("" when
 *  the first argument is not a literal). */
std::string
firstLiteralArg(const std::vector<Token> &toks, std::size_t open)
{
    if (open + 1 < toks.size() && toks[open + 1].kind == TokKind::Str)
        return toks[open + 1].text;
    return "";
}

bool
fileExcludesMetric(const std::vector<Token> &toks,
                   const std::string &literal)
{
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Ident &&
            toks[i].text == "excludeFromFingerprint" &&
            toks[i + 1].text == "(" &&
            toks[i + 2].kind == TokKind::Str &&
            (literal.empty() || toks[i + 2].text == literal))
            return true;
    }
    return false;
}

void
checkFingerprintHygiene(const ProjectModel &model, const LexedFile &f,
                        const std::vector<const FnDecl *> &regions,
                        std::vector<Diagnostic> &out)
{
    const SymbolIndex &sym = model.symbols;
    const auto &toks = f.lex.tokens;
    if (sym.registrationMethods.empty())
        return;

    for (const FnDecl *fn : regions) {
        // Does this function consume a wall-clock-coupled value?
        std::string taintSource;
        for (std::size_t i = fn->bodyBegin;
             i < fn->bodyEnd && i < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const std::string prev = i > 0 ? toks[i - 1].text : "";
            if (prev == "." || prev == "->")
                continue;
            if (sym.wallClockTainted.count(toks[i].text) &&
                i + 1 < toks.size() && toks[i + 1].text == "(") {
                taintSource = toks[i].text;
                break;
            }
        }
        if (taintSource.empty())
            continue;

        for (std::size_t i = fn->bodyBegin;
             i < fn->bodyEnd && i < toks.size(); ++i) {
            if (toks[i].kind != TokKind::Ident ||
                !sym.registrationMethods.count(toks[i].text))
                continue;
            const std::string prev = i > 0 ? toks[i - 1].text : "";
            if (prev != "." && prev != "->")
                continue;
            if (i + 1 >= toks.size() || toks[i + 1].text != "(")
                continue;
            const std::string literal = firstLiteralArg(toks, i + 1);
            if (fileExcludesMetric(toks, literal))
                continue;
            const std::string what =
                literal.empty() ? "a metric" : "metric " + literal;
            report(out, f, Rule::VB008, toks[i].line,
                   what + " is registered in a function that consumes "
                          "the wall-clock-coupled value " +
                       taintSource +
                       "() without a matching excludeFromFingerprint() "
                       "(see --explain VB008)");
        }
    }
}

// ---------------------------------------------- VB009 (and VB008b)

/** Token types guarding a by-reference capture: the captured object is
 *  synchronized or immutable. */
bool
nameLooksGuarded(const std::vector<Token> &toks, const std::string &name)
{
    static const char *kGuards[] = {
        "atomic",   "atomic_flag", "mutex",  "shared_mutex",
        "condition_variable", "condition_variable_any",
        "once_flag", "latch",      "barrier", "const", "constexpr"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident || toks[i].text != name)
            continue;
        // Look back over the declaration head for a guard keyword.
        std::size_t j = i;
        int steps = 0;
        while (j > 0 && steps < 16) {
            --j;
            ++steps;
            const std::string &t = toks[j].text;
            if (t == ";" || t == "{" || t == "}" || t == "(")
                break;
            for (const char *g : kGuards)
                if (t == g)
                    return true;
        }
    }
    return false;
}

void
checkPoolLambdas(const ProjectModel &model, const LexedFile &f,
                 std::vector<Diagnostic> &out)
{
    const SymbolIndex &sym = model.symbols;
    const auto &toks = f.lex.tokens;
    if (sym.poolEntryPoints.empty())
        return;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            !sym.poolEntryPoints.count(toks[i].text) ||
            i + 1 >= toks.size() || toks[i + 1].text != "(")
            continue;
        const std::size_t argEnd = skipParens(toks, i + 1);

        for (std::size_t j = i + 2; j < argEnd; ++j) {
            if (toks[j].text != "[")
                continue;
            // Subscript, not a capture list, when an expression
            // precedes the bracket.
            const std::string &prevT = toks[j - 1].text;
            const bool subscript =
                toks[j - 1].kind == TokKind::Ident || prevT == "]" ||
                prevT == ")";
            std::size_t capEnd = j;
            int depth = 0;
            for (std::size_t k = j; k < argEnd; ++k) {
                if (toks[k].text == "[")
                    ++depth;
                else if (toks[k].text == "]") {
                    if (--depth == 0) {
                        capEnd = k;
                        break;
                    }
                }
            }
            if (subscript || capEnd == j) {
                j = capEnd;
                continue;
            }
            const bool lambda =
                capEnd + 1 < argEnd && (toks[capEnd + 1].text == "(" ||
                                        toks[capEnd + 1].text == "{");
            if (!lambda) {
                j = capEnd;
                continue;
            }

            // Parse the capture list [j+1, capEnd).
            std::vector<std::vector<std::size_t>> groups(1);
            for (std::size_t k = j + 1; k < capEnd; ++k) {
                if (toks[k].text == ",") {
                    groups.emplace_back();
                    continue;
                }
                groups.back().push_back(k);
            }
            for (const auto &g : groups) {
                if (g.empty())
                    continue;
                const std::string &g0 = toks[g[0]].text;
                if (g0 == "=" || g0 == "this" || g0 == "*")
                    continue; // by-value default / this / *this
                if (g0 == "&" && g.size() == 1) {
                    report(out, f, Rule::VB009, toks[g[0]].line,
                           "default by-reference capture [&] into a "
                           "thread-pool lambda — every touched object "
                           "is shared across workers (capture "
                           "explicitly; see --explain VB009)");
                    continue;
                }
                if (g0 == "&" && g.size() >= 2 &&
                    toks[g[1]].kind == TokKind::Ident) {
                    const std::string &name = toks[g[1]].text;
                    if (!nameLooksGuarded(toks, name))
                        report(out, f, Rule::VB009, toks[g[1]].line,
                               "by-reference capture of '" + name +
                                   "' into a thread-pool lambda with "
                                   "no atomic/mutex/const guard in "
                                   "sight (see --explain VB009)");
                }
            }

            // VB008b: registering metrics from inside the pool lambda
            // accumulates in worker order.
            std::size_t bodyOpen = capEnd + 1;
            if (bodyOpen < argEnd && toks[bodyOpen].text == "(")
                bodyOpen = skipParens(toks, bodyOpen);
            while (bodyOpen < argEnd && toks[bodyOpen].text != "{")
                ++bodyOpen;
            if (bodyOpen < argEnd && toks[bodyOpen].text == "{") {
                const std::size_t bodyEnd =
                    std::min(skipBraces(toks, bodyOpen), argEnd);
                for (std::size_t k = bodyOpen; k < bodyEnd; ++k) {
                    if (toks[k].kind != TokKind::Ident ||
                        !sym.registrationMethods.count(toks[k].text))
                        continue;
                    const std::string prev =
                        k > 0 ? toks[k - 1].text : "";
                    if ((prev == "." || prev == "->") &&
                        k + 1 < toks.size() &&
                        toks[k + 1].text == "(") {
                        report(out, f, Rule::VB008, toks[k].line,
                               "metric registered inside a thread-pool "
                               "lambda — fingerprinted values must be "
                               "recorded per job and merged in job "
                               "order (see --explain VB008)");
                    }
                }
            }
            j = capEnd;
        }
        i = argEnd - 1;
    }
}

} // namespace

void
runProjectRules(const ProjectModel &model, std::vector<Diagnostic> &out)
{
    std::map<std::string, const LexedFile *> byPath;
    for (const LexedFile &f : model.files)
        if (!f.synthetic)
            byPath[f.path] = &f;

    checkLayering(model, byPath, out);

    std::map<std::string, std::vector<const FnDecl *>> regionsByFile;
    for (const FnDecl &fn : model.functions)
        if (fn.hasBody)
            regionsByFile[fn.file].push_back(&fn);

    for (const LexedFile &f : model.files) {
        if (f.synthetic || !isModelCodePath(f.path))
            continue;
        const std::string stem = fileStem(f.path);
        if (!model.symbols.providerStems.count(stem))
            checkRngDiscipline(model, f, out);
        if (!model.symbols.registryStems.count(stem))
            checkFingerprintHygiene(model, f, regionsByFile[f.path],
                                    out);
        if (!model.symbols.poolStems.count(stem))
            checkPoolLambdas(model, f, out);
    }
}

} // namespace vboost::vblint
