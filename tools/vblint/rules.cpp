#include "rules.hpp"

namespace vboost::vblint {

std::string
ruleName(Rule r)
{
    switch (r) {
      case Rule::VB001:
        return "VB001";
      case Rule::VB002:
        return "VB002";
      case Rule::VB003:
        return "VB003";
      case Rule::VB004:
        return "VB004";
      case Rule::VB005:
        return "VB005";
      case Rule::VB006:
        return "VB006";
      case Rule::VB007:
        return "VB007";
      case Rule::VB008:
        return "VB008";
      case Rule::VB009:
        return "VB009";
      case Rule::VB900:
        return "VB900";
      case Rule::VB901:
        return "VB901";
    }
    return "VB???";
}

std::optional<Rule>
ruleFromName(const std::string &name)
{
    std::string up;
    up.reserve(name.size());
    for (char c : name)
        up.push_back(c >= 'a' && c <= 'z' ? static_cast<char>(c - 32) : c);
    for (Rule r : allRules())
        if (ruleName(r) == up)
            return r;
    return std::nullopt;
}

std::string
ruleSummary(Rule r)
{
    switch (r) {
      case Rule::VB001:
        return "banned nondeterminism source in model code";
      case Rule::VB002:
        return "iteration over an unordered container";
      case Rule::VB003:
        return "floating-point += accumulation inside a loop";
      case Rule::VB004:
        return "mutable static/global state in model code";
      case Rule::VB005:
        return "header hygiene violation";
      case Rule::VB006:
        return "module layering violation in the include graph";
      case Rule::VB007:
        return "RNG-stream discipline violation";
      case Rule::VB008:
        return "metrics fingerprint hygiene violation";
      case Rule::VB009:
        return "shared-mutable capture into a thread-pool lambda";
      case Rule::VB900:
        return "unused vblint suppression";
      case Rule::VB901:
        return "malformed vblint annotation";
    }
    return "unknown rule";
}

std::string
ruleExplanation(Rule r)
{
    switch (r) {
      case Rule::VB001:
        return "VB001 — banned nondeterminism source in model code\n"
               "\n"
               "Model code under src/ must be a pure function of its\n"
               "explicit seeds (DESIGN.md §7): every Monte-Carlo result,\n"
               "accuracy-vs-voltage curve and serving fingerprint is\n"
               "validated by bitwise reproduction at any thread count.\n"
               "rand(), srand(), std::random_device, wall-clock sources\n"
               "(time(), clock(), gettimeofday, std::chrono::system_clock,\n"
               "steady_clock, high_resolution_clock) smuggle ambient state\n"
               "into that computation and corrupt every downstream\n"
               "statistic silently.\n"
               "\n"
               "Fix: draw randomness from vboost::Rng streams derived via\n"
               "split() from an explicit seed; take timestamps only in\n"
               "bench/CLI layers and pass them in as data.\n"
               "Waive: // vblint: allow(VB001, <reason>) on the offending\n"
               "line, or the line above it.";
      case Rule::VB002:
        return "VB002 — iteration over an unordered container\n"
               "\n"
               "std::unordered_map / std::unordered_set iteration order is\n"
               "unspecified and varies across libstdc++ versions, seeds\n"
               "and insertion histories. Any iteration that feeds an\n"
               "accumulator, a serialized artifact or a fingerprint makes\n"
               "results depend on hash-table internals (the reduction\n"
               "discipline of DESIGN.md §7 exists precisely to prevent\n"
               "this). vblint flags every range-for or .begin() loop over\n"
               "a variable declared as an unordered container.\n"
               "\n"
               "Fix: use std::map / std::set, or copy keys out and sort\n"
               "before iterating.\n"
               "Waive (iteration provably order-insensitive):\n"
               "// vblint: ordered-ok(<reason>).";
      case Rule::VB003:
        return "VB003 — floating-point += accumulation inside a loop\n"
               "\n"
               "Floating-point addition is not associative: the same\n"
               "summands in a different order give a different result, so\n"
               "an accumulation loop whose iteration order can change\n"
               "(thread count, container order, work stealing) silently\n"
               "breaks bitwise determinism. In the fi/, serve/,\n"
               "resilience/ and obs/ layers every float/double/unit-\n"
               "quantity accumulation must either run in a deterministic\n"
               "order or say so.\n"
               "\n"
               "Fix: reduce in a fixed order (map-index order, batch seq\n"
               "order) or use an ordered-reduce/Kahan helper.\n"
               "Waive (order is provably fixed):\n"
               "// vblint: assoc-ok(<reason>).";
      case Rule::VB004:
        return "VB004 — mutable static/global state in model code\n"
               "\n"
               "Mutable statics and namespace-scope globals couple\n"
               "otherwise-independent runs: two experiments in one\n"
               "process observe each other through the shared state, and\n"
               "parallel workers race on it. Model state must live in\n"
               "objects owned by the experiment (per-slot scratch,\n"
               "DESIGN.md §7).\n"
               "\n"
               "Fix: move the state into a context/config object threaded\n"
               "through the call graph.\n"
               "Waive (thread-safe infrastructure that never feeds\n"
               "results): // vblint: allow(VB004, <reason>).";
      case Rule::VB005:
        return "VB005 — header hygiene\n"
               "\n"
               "Every header must have an include guard: #pragma once or\n"
               "a classic #ifndef/#define pair (the repo convention is\n"
               "VBOOST_<DIR>_<FILE>_HPP guards; both forms are accepted).\n"
               "`using namespace` at namespace scope in a header injects\n"
               "names into every includer and can change overload\n"
               "resolution at a distance.\n"
               "\n"
               "Fix: add a guard; qualify names instead of using\n"
               "namespace directives in headers.\n"
               "Waive: // vblint: allow(VB005, <reason>).";
      case Rule::VB006:
        return "VB006 — module layering violation in the include graph\n"
               "\n"
               "src/ is a layered DAG: every module sits in a tier and\n"
               "may include only modules in strictly lower tiers —\n"
               "  0 common | 1 circuit,obs | 2 sram,energy |\n"
               "  3 core,dnn,timing | 4 resilience,accel | 5 fi |\n"
               "  6 serve | 7 cluster.\n"
               "A back-edge (or same-tier cross-module edge) makes the\n"
               "dependency graph cyclic over time, couples low layers to\n"
               "the experiment stack above them, and breaks the\n"
               "bottom-up testing order the determinism contract is\n"
               "verified in. vblint builds the project include graph\n"
               "(pass 1) and rejects back-edges, same-tier cross edges,\n"
               "file-level include cycles, modules missing from the\n"
               "tier table, and computed #include directives it cannot\n"
               "resolve.\n"
               "\n"
               "Fix: move the shared type down a tier, or invert the\n"
               "dependency (callback / interface in the lower module).\n"
               "New top-level module: extend the tier table in\n"
               "tools/vblint/include_graph.cpp deliberately.\n"
               "Waive: // vblint: allow(VB006, <reason>) trailing on the\n"
               "#include line.";
      case Rule::VB007:
        return "VB007 — RNG-stream discipline\n"
               "\n"
               "All model randomness must come from the repo's\n"
               "counter-based stream helpers (DESIGN.md §7): the\n"
               "split()-capable stream classes and the integer hash\n"
               "helpers discovered from the project symbol index — not\n"
               "from a hardcoded name list, so a renamed or added\n"
               "helper is picked up automatically. Direct\n"
               "std::mt19937 / std::*_distribution construction has\n"
               "library-dependent draw sequences, and ad-hoc seed\n"
               "arithmetic in a stream constructor (Rng(seed + i))\n"
               "collides streams silently — stream derivation must go\n"
               "through split(counter) / the blessed hash helpers,\n"
               "whose mixing is collision-audited.\n"
               "\n"
               "Fix: Rng(seed).split(counter) for derived streams;\n"
               "cellHash/mix64-style helpers for per-cell draws.\n"
               "Waive: // vblint: allow(VB007, <reason>).";
      case Rule::VB008:
        return "VB008 — metrics fingerprint hygiene\n"
               "\n"
               "The obs registry fingerprint is a determinism\n"
               "acceptance value (DESIGN.md §11): every registered\n"
               "metric feeds it unless excluded. Two antipatterns\n"
               "corrupt it. (a) Registering a metric computed from a\n"
               "wall-clock-coupled source (a function declared in a\n"
               "file with VB001 sites, per the project symbol index)\n"
               "without excludeFromFingerprint(name) makes the\n"
               "fingerprint differ across runs. (b) Registering\n"
               "metrics from inside a lambda handed to a thread-pool\n"
               "entry point accumulates in worker order — fingerprinted\n"
               "sums must be recorded into per-job registries and\n"
               "merged in job order.\n"
               "\n"
               "Fix: excludeFromFingerprint() for wall-clock telemetry\n"
               "(same file as the registration); per-job registries +\n"
               "job-order merge() for parallel sections.\n"
               "Waive: // vblint: allow(VB008, <reason>).";
      case Rule::VB009:
        return "VB009 — shared-mutable capture into a thread-pool "
               "lambda\n"
               "\n"
               "Lambdas handed to the pool entry points (parallelFor /\n"
               "submit, discovered from the thread-pool class in the\n"
               "symbol index) run concurrently. A default by-reference\n"
               "capture ([&]) or a by-reference capture of plain\n"
               "mutable state is how data races and schedule-dependent\n"
               "results enter: every captured reference must be\n"
               "atomic, mutex-guarded, or per-index/per-slot disjoint.\n"
               "vblint cannot prove disjointness, so the correct §7\n"
               "pattern (job j writes only results[j]) is waived at the\n"
               "callsite with the reason stating the disjointness\n"
               "argument.\n"
               "\n"
               "Fix: capture by value, capture atomics/mutexes by\n"
               "reference, or keep per-slot scratch state.\n"
               "Waive: // vblint: allow(VB009, <why disjoint/guarded>)\n"
               "on the lambda's opening line.";
      case Rule::VB900:
        return "VB900 — unused vblint suppression\n"
               "\n"
               "A vblint annotation that matches no diagnostic on its\n"
               "target line is dead: either the offending code moved or\n"
               "the waiver was never needed. Stale waivers rot the audit\n"
               "trail, so they are diagnostics themselves.\n"
               "\n"
               "Fix: delete the annotation (or move it back next to the\n"
               "code it waives).";
      case Rule::VB901:
        return "VB901 — malformed vblint annotation\n"
               "\n"
               "A comment starting with `vblint:` that does not parse as\n"
               "allow(VBxxx, reason) / ordered-ok(reason) / assoc-ok\n"
               "almost certainly meant to waive something and silently\n"
               "does not.\n"
               "\n"
               "Fix: use one of\n"
               "  // vblint: allow(VB004, <reason>)\n"
               "  // vblint: ordered-ok(<reason>)\n"
               "  // vblint: assoc-ok(<reason>)";
    }
    return "unknown rule";
}

const std::vector<Rule> &
allRules()
{
    static const std::vector<Rule> kRules = {
        Rule::VB001, Rule::VB002, Rule::VB003, Rule::VB004,
        Rule::VB005, Rule::VB006, Rule::VB007, Rule::VB008,
        Rule::VB009, Rule::VB900, Rule::VB901,
    };
    return kRules;
}

const std::set<std::string> &
bannedCallIdents()
{
    static const std::set<std::string> kBanned = {
        "rand",     "srand",       "rand_r",   "drand48", "lrand48",
        "time",     "clock",       "gettimeofday",        "localtime",
        "gmtime",   "mktime"};
    return kBanned;
}

const std::set<std::string> &
bannedTypeIdents()
{
    static const std::set<std::string> kBanned = {
        "random_device", "system_clock", "steady_clock",
        "high_resolution_clock"};
    return kBanned;
}

} // namespace vboost::vblint
