/**
 * @file
 * Project include graph for vblint pass 1 (DESIGN.md §10). Parses
 * #include directives out of every lexed file, resolves quoted targets
 * against the scanned file set (no filesystem access — the analyzer is
 * a pure function of its inputs), and exposes the module tier table
 * that VB006 enforces as a layering DAG.
 *
 * Tiers (low may never include high; same-tier cross-module edges are
 * also rejected):
 *
 *   0 common
 *   1 circuit, obs
 *   2 sram, energy
 *   3 core, dnn, timing
 *   4 resilience, accel
 *   5 fi
 *   6 recovery
 *   7 serve
 *   8 cluster
 *
 * The table is measured from the repo, not aspirational: every edge in
 * src/ today is forward under it. A new top-level module must be added
 * here deliberately (VB006 flags unknown modules).
 */

#ifndef VBOOST_VBLINT_INCLUDE_GRAPH_HPP
#define VBOOST_VBLINT_INCLUDE_GRAPH_HPP

#include <map>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace vboost::vblint {

/** Syntactic form of one #include directive. */
enum class IncludeKind {
    Quoted,   ///< #include "path"
    Angled,   ///< #include <path> (assumed system/toolchain)
    Computed, ///< #include MACRO — target unknowable to a lexer
};

/** One #include directive found in a scanned file. */
struct IncludeEdge
{
    std::string fromFile; ///< repo-relative path of the including file
    std::string target;   ///< include text between the delimiters
    /** Repo-relative path of the included file when the target resolves
     *  to a scanned file ("" otherwise — system headers, or project
     *  headers outside the scan set). */
    std::string resolvedFile;
    int line = 0;
    IncludeKind kind = IncludeKind::Quoted;
};

/** Include graph over one scan: every directive as an edge, plus an
 *  adjacency index over resolved edges for cycle detection. */
struct IncludeGraph
{
    std::vector<IncludeEdge> edges;
    /** fromFile -> indices into edges with a non-empty resolvedFile. */
    std::map<std::string, std::vector<std::size_t>> resolvedOut;
};

/** One file handed to the graph builder (lexed elsewhere, pass 1 lexes
 *  every file exactly once). */
struct IncludeScanInput
{
    std::string path; ///< repo-relative
    const LexedSource *lex = nullptr;
};

/** Module of a repo-relative path: "sram" for src/sram/fault_map.hpp,
 *  "" for anything not of the form src/<module>/... */
std::string moduleOfPath(const std::string &path);

/** Tier of a module in the layering DAG; -1 for unknown modules. */
int moduleTier(const std::string &module);

/** The full module -> tier table, for reports and docs. */
const std::map<std::string, int> &moduleTiers();

/** Parse the #include directives of every input into an edge list.
 *  Quoted targets are resolved first as src/<target> (the repo's
 *  include-root convention), then relative to the including file's
 *  directory, against the set of scanned paths only. */
IncludeGraph buildIncludeGraph(const std::vector<IncludeScanInput> &files);

/** Every elementary include cycle among resolved edges, each cycle a
 *  file list starting at its lexicographically smallest member and
 *  listed once. An acyclic graph returns {}. */
std::vector<std::vector<std::string>>
findIncludeCycles(const IncludeGraph &graph);

} // namespace vboost::vblint

#endif // VBOOST_VBLINT_INCLUDE_GRAPH_HPP
