#include "project_model.hpp"

#include <algorithm>

#include "rules.hpp"
#include "scan_util.hpp"

namespace vboost::vblint {

namespace {

bool
stmtContains(const std::vector<Token> &toks,
             const std::vector<std::size_t> &stmt, const char *text)
{
    for (std::size_t i : stmt)
        if (toks[i].text == text)
            return true;
    return false;
}

/** Declaration scanner for one file: records every class body and
 *  function declaration/definition at namespace or class scope.
 *  Function bodies are skipped (the index needs declarations only;
 *  taint scans walk raw tokens separately). */
class DeclScanner
{
  public:
    DeclScanner(const std::string &path, const LexedSource &src,
                std::vector<FnDecl> &fns, std::vector<ClassDecl> &classes)
        : path_(path), toks_(src.tokens), fns_(fns), classes_(classes)
    {
    }

    void run() { scanRegion(0, toks_.size(), -1, true); }

  private:
    static constexpr std::size_t kNoBody = static_cast<std::size_t>(-1);

    /** Scan [begin, end); classIdx >= 0 inside a class body. */
    void
    scanRegion(std::size_t begin, std::size_t end, int classIdx,
               bool default_public)
    {
        std::vector<std::size_t> stmt;
        bool pub = default_public;
        for (std::size_t i = begin; i < end; ++i) {
            const std::string &t = toks_[i].text;
            if (t == ";") {
                maybeRecordFn(stmt, classIdx, pub, kNoBody, kNoBody);
                stmt.clear();
                continue;
            }
            if (t == ":" && classIdx >= 0 && stmt.size() == 1) {
                const std::string &w = toks_[stmt[0]].text;
                if (w == "public") {
                    pub = true;
                    stmt.clear();
                    continue;
                }
                if (w == "private" || w == "protected") {
                    pub = false;
                    stmt.clear();
                    continue;
                }
            }
            if (t == "{") {
                const std::size_t close =
                    std::min(skipBraces(toks_, i), end);
                handleBrace(stmt, i, close, classIdx, pub);
                stmt.clear();
                i = close - 1; // loop increment lands just past '}'
                continue;
            }
            if (t == "}") { // unbalanced stray; resync
                stmt.clear();
                continue;
            }
            stmt.push_back(i);
        }
    }

    void
    handleBrace(const std::vector<std::size_t> &stmt, std::size_t open,
                std::size_t close, int classIdx, bool pub)
    {
        const bool has_paren = stmtContains(toks_, stmt, "(");
        if (stmtContains(toks_, stmt, "namespace") && !has_paren) {
            scanRegion(open + 1, close - 1, -1, true);
            return;
        }
        if (stmtContains(toks_, stmt, "enum"))
            return;
        if ((stmtContains(toks_, stmt, "class") ||
             stmtContains(toks_, stmt, "struct") ||
             stmtContains(toks_, stmt, "union")) &&
            !has_paren && !stmtContains(toks_, stmt, "friend")) {
            // Name = first identifier after the class-key.
            std::string name;
            int line = 0;
            bool is_struct = false;
            bool seen_key = false;
            for (std::size_t i : stmt) {
                const Token &tok = toks_[i];
                if (tok.text == "class" || tok.text == "struct" ||
                    tok.text == "union") {
                    seen_key = true;
                    is_struct = tok.text != "class";
                    continue;
                }
                if (seen_key && tok.kind == TokKind::Ident) {
                    name = tok.text;
                    line = tok.line;
                    break;
                }
            }
            if (name.empty())
                return; // anonymous aggregate
            ClassDecl cd;
            cd.name = name;
            cd.file = path_;
            cd.line = line;
            for (std::size_t i = open + 1; i + 2 < close; ++i) {
                if (toks_[i].text == "std" &&
                    toks_[i + 1].text == "::" &&
                    toks_[i + 2].text == "thread") {
                    cd.hasStdThreadMember = true;
                    break;
                }
            }
            classes_.push_back(cd);
            const int idx = static_cast<int>(classes_.size() - 1);
            scanRegion(open + 1, close - 1, idx, is_struct);
            return;
        }
        if (has_paren) {
            maybeRecordFn(stmt, classIdx, pub, open, close);
            return;
        }
        // Brace initializer / unknown aggregate: nothing to record.
    }

    void
    maybeRecordFn(const std::vector<std::size_t> &stmt, int classIdx,
                  bool pub, std::size_t bodyOpen, std::size_t bodyClose)
    {
        if (stmt.empty())
            return;
        static const char *kBail[] = {"using",  "typedef", "friend",
                                      "template", "static_assert",
                                      "enum",   "class",   "struct",
                                      "union",  "namespace"};
        for (const char *kw : kBail)
            if (stmtContains(toks_, stmt, kw))
                return;

        std::size_t p = stmt.size();
        for (std::size_t k = 0; k < stmt.size(); ++k) {
            if (toks_[stmt[k]].text == "(") {
                p = k;
                break;
            }
        }
        if (p == stmt.size() || p == 0)
            return;
        const Token &nameTok = toks_[stmt[p - 1]];
        if (nameTok.kind != TokKind::Ident)
            return;

        FnDecl fn;
        fn.name = nameTok.text;
        fn.file = path_;
        fn.line = nameTok.line;
        fn.isPublic = classIdx < 0 ? true : pub;
        fn.hasBody = bodyOpen != kNoBody;
        if (fn.hasBody) {
            fn.bodyBegin = bodyOpen;
            fn.bodyEnd = bodyClose;
        }

        std::size_t retEnd = p - 1;
        if (classIdx >= 0) {
            fn.klass = classes_[static_cast<std::size_t>(classIdx)].name;
        } else if (p >= 3 && toks_[stmt[p - 2]].text == "::" &&
                   toks_[stmt[p - 3]].kind == TokKind::Ident) {
            // Out-of-class member definition: Type Class::name(...).
            fn.klass = toks_[stmt[p - 3]].text;
            retEnd = p - 3;
        }

        static const char *kQualifiers[] = {"inline",   "static",
                                            "constexpr", "consteval",
                                            "explicit", "virtual",
                                            "extern",   "mutable"};
        for (std::size_t k = 0; k < retEnd; ++k)
            fn.ret.push_back(toks_[stmt[k]].text);
        while (!fn.ret.empty() &&
               std::any_of(std::begin(kQualifiers), std::end(kQualifiers),
                           [&](const char *q) { return fn.ret.front() == q; }))
            fn.ret.erase(fn.ret.begin());

        // A return type containing these cannot be a declaration head.
        static const char *kRetBail[] = {"=", ",", "return", "new",
                                         "throw", "delete", "if", "for",
                                         "while", "switch", "catch", "do",
                                         "goto", "case", "else"};
        for (const std::string &t : fn.ret)
            for (const char *b : kRetBail)
                if (t == b)
                    return;

        int depth = 0;
        for (std::size_t k = p; k < stmt.size(); ++k) {
            const std::string &t = toks_[stmt[k]].text;
            if (t == "(") {
                if (depth++ > 0)
                    fn.params.push_back(t);
                continue;
            }
            if (t == ")") {
                if (--depth == 0)
                    break;
                fn.params.push_back(t);
                continue;
            }
            fn.params.push_back(t);
        }

        if (classIdx >= 0)
            classes_[static_cast<std::size_t>(classIdx)]
                .memberNames.insert(fn.name);
        fns_.push_back(std::move(fn));
    }

    const std::string path_;
    const std::vector<Token> &toks_;
    std::vector<FnDecl> &fns_;
    std::vector<ClassDecl> &classes_;
};

/** True when the file mentions a VB001-banned symbol (same exemptions
 *  as the VB001 pass: member access is not the libc/std symbol; call
 *  idents must be called). Waived uses still taint — the file IS
 *  wall-clock coupled, waiver or not. */
bool
touchesWallClock(const LexedSource &src)
{
    const auto &toks = src.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        if (prev == "." || prev == "->")
            continue;
        if (bannedTypeIdents().count(toks[i].text))
            return true;
        if (bannedCallIdents().count(toks[i].text) &&
            i + 1 < toks.size() && toks[i + 1].text == "(")
            return true;
    }
    return false;
}

/** Parameter list is scalar-only: no references/pointers, every token
 *  a scalar type keyword, punctuation, literal or the parameter name.
 *  The filter that keeps hashHelpers to pure integer mixers. */
bool
scalarOnlyParams(const std::vector<std::string> &params)
{
    static const std::set<std::string> kTypeish = {
        "std",      "::",       "const",    "unsigned", "signed",
        "int",      "long",     "short",    "char",     "bool",
        "float",    "double",   "size_t",   "uint8_t",  "uint16_t",
        "uint32_t", "uint64_t", "int8_t",   "int16_t",  "int32_t",
        "int64_t",  "uintptr_t", "ptrdiff_t", "<",      ">",
        ",",        "=",        "..."};
    for (const std::string &t : params)
        if (t == "&" || t == "*")
            return false;
    // Per parameter: every token must be type-ish except one free
    // identifier (the name) and literals (default args).
    std::vector<std::vector<std::string>> groups(1);
    for (const std::string &t : params) {
        if (t == ",") {
            groups.emplace_back();
            continue;
        }
        groups.back().push_back(t);
    }
    for (const auto &g : groups) {
        int freeIdents = 0;
        for (const std::string &t : g) {
            if (kTypeish.count(t))
                continue;
            const char c = t.empty() ? '\0' : t.front();
            if (c >= '0' && c <= '9')
                continue; // literal default argument
            const bool ident =
                (c == '_' || (c >= 'a' && c <= 'z') ||
                 (c >= 'A' && c <= 'Z'));
            if (!ident)
                return false;
            ++freeIdents;
        }
        if (freeIdents > 1)
            return false; // a non-scalar user type plus a name
    }
    return true;
}

bool
retContains(const FnDecl &fn, const char *text)
{
    return std::find(fn.ret.begin(), fn.ret.end(), text) != fn.ret.end();
}

bool
paramsContain(const FnDecl &fn, const char *text)
{
    return std::find(fn.params.begin(), fn.params.end(), text) !=
           fn.params.end();
}

} // namespace

std::string
fileStem(const std::string &path)
{
    static const char *kExts[] = {".cpp", ".cc", ".cxx", ".hpp", ".h",
                                  ".hh"};
    for (const char *ext : kExts) {
        const std::string e(ext);
        if (path.size() > e.size() &&
            path.compare(path.size() - e.size(), e.size(), e) == 0)
            return path.substr(0, path.size() - e.size());
    }
    return path;
}

ProjectModel
buildProjectModel(const std::vector<SourceInput> &inputs)
{
    ProjectModel model;

    // ---- lex every input once --------------------------------------
    std::map<std::string, int> byPath;
    for (const SourceInput &in : inputs) {
        LexedFile f;
        f.path = in.path;
        f.lex = lex(in.content);
        byPath[in.path] = static_cast<int>(model.files.size());
        model.files.push_back(std::move(f));
    }

    // Pair cpp inputs with their header: an already-scanned input when
    // present, else a synthetic index-only file from the sibling text.
    const std::size_t realCount = model.files.size();
    for (std::size_t i = 0; i < realCount; ++i) {
        if (inputs[i].siblingHeader.empty())
            continue;
        const std::string stem = fileStem(inputs[i].path);
        int sib = -1;
        for (const char *ext : {".hpp", ".h", ".hh"}) {
            const auto it = byPath.find(stem + ext);
            if (it != byPath.end()) {
                sib = it->second;
                break;
            }
        }
        if (sib < 0) {
            LexedFile f;
            f.path = stem + ".hpp";
            f.lex = lex(inputs[i].siblingHeader);
            f.synthetic = true;
            sib = static_cast<int>(model.files.size());
            model.files.push_back(std::move(f));
        }
        model.files[i].siblingIndex = sib;
    }

    // ---- declaration scan + include graph --------------------------
    std::vector<IncludeScanInput> graphInputs;
    for (const LexedFile &f : model.files) {
        DeclScanner(f.path, f.lex, model.functions, model.classes).run();
        if (!f.synthetic)
            graphInputs.push_back({f.path, &f.lex});
    }
    model.includes = buildIncludeGraph(graphInputs);

    // ---- symbol index ----------------------------------------------
    SymbolIndex &sym = model.symbols;

    std::map<std::string, bool> stemTainted;
    for (const LexedFile &f : model.files) {
        const std::string stem = fileStem(f.path);
        if (touchesWallClock(f.lex))
            stemTainted[stem] = true;
        else
            stemTainted.emplace(stem, false);
    }

    for (const ClassDecl &c : model.classes) {
        if (c.memberNames.count("split")) {
            sym.streamClasses.insert(c.name);
            sym.providerStems.insert(fileStem(c.file));
        }
        if (c.memberNames.count("excludeFromFingerprint")) {
            sym.registryClasses.insert(c.name);
            sym.registryStems.insert(fileStem(c.file));
        }
        if (c.hasStdThreadMember) {
            sym.poolClasses.insert(c.name);
            sym.poolStems.insert(fileStem(c.file));
        }
    }

    // Class names per file, for the registration-method return check.
    std::map<std::string, std::set<std::string>> classesInFile;
    for (const ClassDecl &c : model.classes)
        classesInFile[c.file].insert(c.name);

    for (const FnDecl &fn : model.functions) {
        if (fn.klass.empty()) {
            if ((retContains(fn, "uint64_t") ||
                 retContains(fn, "uint64")) &&
                scalarOnlyParams(fn.params)) {
                sym.hashHelpers.insert(fn.name);
                sym.providerStems.insert(fileStem(fn.file));
            }
            const auto taint = stemTainted.find(fileStem(fn.file));
            const bool voidish = retContains(fn, "void");
            if (taint != stemTainted.end() && taint->second &&
                !voidish && !fn.ret.empty())
                sym.wallClockTainted.insert(fn.name);
            continue;
        }
        if (sym.registryClasses.count(fn.klass) && fn.isPublic &&
            fn.ret.size() == 1 &&
            classesInFile[fn.file].count(fn.ret.front()))
            sym.registrationMethods.insert(fn.name);
        if (sym.poolClasses.count(fn.klass) && fn.isPublic &&
            paramsContain(fn, "function"))
            sym.poolEntryPoints.insert(fn.name);
    }

    // Free functions declared beside a pool class that accept a
    // callable are pool entry points too (the global parallelFor).
    for (const FnDecl &fn : model.functions) {
        if (!fn.klass.empty() || !paramsContain(fn, "function"))
            continue;
        if (sym.poolStems.count(fileStem(fn.file)))
            sym.poolEntryPoints.insert(fn.name);
    }

    return model;
}

} // namespace vboost::vblint
