/**
 * @file
 * vblint CLI (DESIGN.md §10): the repo's determinism & modeling-hygiene
 * static analyzer. Scans C++ sources under --root (default: the
 * current directory) and fails the build when any diagnostic is
 * neither inline-suppressed nor baselined.
 *
 *   vblint [options] [paths...]          # paths default to: src
 *
 * Options:
 *   --root <dir>            repo root paths are resolved against
 *   --baseline <file>       committed waiver file (file|RULE|text)
 *   --json <file>           write the machine-readable report
 *   --explain <rule>        print a rule's rationale and exit
 *   --list-suppressions     dump the inline-waiver inventory and exit
 *   --write-baseline <file> write active diagnostics as a new baseline
 *   --update-baseline       rewrite --baseline from current findings;
 *                           exits 1 when stale entries were pruned so
 *                           removals stay visible in CI
 *   --github-annotations    emit ::error/::warning workflow commands
 *   --all                   also print suppressed/baselined findings
 *
 * Exit status: 0 clean, 1 unwaived diagnostics, 2 usage/IO error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "report.hpp"

namespace fs = std::filesystem;
using namespace vboost::vblint;

namespace {

struct Options
{
    std::string root = ".";
    std::string baselinePath;
    std::string jsonPath;
    std::string explainRule;
    std::string writeBaselinePath;
    bool updateBaselineMode = false;
    bool githubAnnotations = false;
    bool listSuppressions = false;
    bool showAll = false;
    std::vector<std::string> paths;
};

void
usage(std::ostream &os)
{
    os << "usage: vblint [--root DIR] [--baseline FILE] [--json FILE]\n"
          "              [--explain RULE] [--list-suppressions]\n"
          "              [--write-baseline FILE] [--update-baseline]\n"
          "              [--github-annotations] [--all] [paths...]\n"
          "paths default to 'src' (relative to --root).\n";
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" ||
           ext == ".h" || ext == ".hh";
}

std::string
readFile(const fs::path &p, bool &ok)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        ok = false;
        return "";
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ok = true;
    return ss.str();
}

/** Repo-relative path with forward slashes (diagnostic/baseline key). */
std::string
relPath(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    std::string s = (ec ? file : rel).generic_string();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "vblint: " << what
                          << " requires an argument\n";
                usage(std::cerr);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root")
            opt.root = need("--root");
        else if (arg == "--baseline")
            opt.baselinePath = need("--baseline");
        else if (arg == "--json")
            opt.jsonPath = need("--json");
        else if (arg == "--explain")
            opt.explainRule = need("--explain");
        else if (arg == "--write-baseline")
            opt.writeBaselinePath = need("--write-baseline");
        else if (arg == "--update-baseline")
            opt.updateBaselineMode = true;
        else if (arg == "--github-annotations")
            opt.githubAnnotations = true;
        else if (arg == "--list-suppressions")
            opt.listSuppressions = true;
        else if (arg == "--all")
            opt.showAll = true;
        else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "vblint: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            opt.paths.push_back(arg);
        }
    }

    if (!opt.explainRule.empty()) {
        const auto rule = ruleFromName(opt.explainRule);
        if (!rule) {
            std::cerr << "vblint: unknown rule '" << opt.explainRule
                      << "'; rules are:\n";
            for (Rule r : allRules())
                std::cerr << "  " << ruleName(r) << " — "
                          << ruleSummary(r) << "\n";
            return 2;
        }
        std::cout << ruleExplanation(*rule) << "\n";
        return 0;
    }

    if (opt.paths.empty())
        opt.paths.push_back("src");

    const fs::path root(opt.root);
    std::vector<fs::path> files;
    for (const std::string &p : opt.paths) {
        const fs::path full = root / p;
        std::error_code ec;
        if (fs::is_regular_file(full, ec)) {
            files.push_back(full);
            continue;
        }
        if (!fs::is_directory(full, ec)) {
            std::cerr << "vblint: no such file or directory: "
                      << full.string() << "\n";
            return 2;
        }
        for (fs::recursive_directory_iterator it(full, ec), end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (it->is_regular_file() && isSourceFile(it->path()))
                files.push_back(it->path());
        }
    }
    // Deterministic scan order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<SourceInput> inputs;
    inputs.reserve(files.size());
    for (const fs::path &f : files) {
        SourceInput in;
        in.path = relPath(f, root);
        bool ok = false;
        in.content = readFile(f, ok);
        if (!ok) {
            std::cerr << "vblint: cannot read " << f.string() << "\n";
            return 2;
        }
        if (f.extension() == ".cpp" || f.extension() == ".cc") {
            for (const char *ext : {".hpp", ".h", ".hh"}) {
                fs::path sib = f;
                sib.replace_extension(ext);
                std::error_code ec;
                if (fs::is_regular_file(sib, ec)) {
                    bool sib_ok = false;
                    in.siblingHeader = readFile(sib, sib_ok);
                    break;
                }
            }
        }
        inputs.push_back(std::move(in));
    }

    std::vector<BaselineEntry> baseline;
    if (!opt.baselinePath.empty()) {
        bool ok = false;
        const std::string content = readFile(opt.baselinePath, ok);
        if (!ok) {
            std::cerr << "vblint: cannot read baseline "
                      << opt.baselinePath << "\n";
            return 2;
        }
        std::vector<std::string> errors;
        baseline = parseBaseline(content, errors);
        for (const std::string &e : errors)
            std::cerr << "vblint: " << opt.baselinePath << ": " << e
                      << "\n";
        if (!errors.empty())
            return 2;
    }

    const RepoReport report = analyzeAll(inputs, baseline);

    if (opt.listSuppressions) {
        printSuppressions(std::cout, report);
        return 0;
    }

    if (opt.updateBaselineMode) {
        if (opt.baselinePath.empty()) {
            std::cerr << "vblint: --update-baseline requires "
                         "--baseline FILE\n";
            return 2;
        }
        const BaselineUpdate up = updateBaseline(report);
        std::ofstream out(opt.baselinePath);
        if (!out) {
            std::cerr << "vblint: cannot write " << opt.baselinePath
                      << "\n";
            return 2;
        }
        out << up.content;
        std::cout << "vblint: baseline updated (" << up.added
                  << " added, " << up.kept << " kept, " << up.pruned
                  << " pruned)\n";
        for (const BaselineEntry &e : up.prunedEntries)
            std::cout << "vblint: pruned stale entry: " << e.file << "|"
                      << e.rule << "|" << e.sourceLine << "\n";
        // Pruning means the committed baseline claimed findings that no
        // longer exist — surface that as a failure so it gets reviewed.
        return up.pruned == 0 ? 0 : 1;
    }

    if (!opt.writeBaselinePath.empty()) {
        std::ofstream out(opt.writeBaselinePath);
        if (!out) {
            std::cerr << "vblint: cannot write "
                      << opt.writeBaselinePath << "\n";
            return 2;
        }
        out << formatBaseline(report.diagnostics);
        std::cout << "vblint: baseline written to "
                  << opt.writeBaselinePath << "\n";
        return 0;
    }

    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath);
        if (!out) {
            std::cerr << "vblint: cannot write " << opt.jsonPath << "\n";
            return 2;
        }
        writeJson(out, report, opt.root);
    }

    if (opt.githubAnnotations)
        printGithubAnnotations(std::cout, report);
    printText(std::cout, report, opt.showAll);
    printSummary(std::cout, report);
    return report.activeCount() == 0 ? 0 : 1;
}
