#include "include_graph.hpp"

#include <algorithm>
#include <set>

#include "scan_util.hpp"

namespace vboost::vblint {

namespace {

std::string
trimCopy(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Directory part of a repo-relative path ("" when none). */
std::string
dirOf(const std::string &path)
{
    const std::size_t pos = path.find_last_of('/');
    return pos == std::string::npos ? "" : path.substr(0, pos);
}

/** Resolve "." and ".." components ("a/b/../c" -> "a/c"). */
std::string
normalizePath(const std::string &path)
{
    std::vector<std::string> out;
    for (const std::string &c : pathComponents(path)) {
        if (c == ".")
            continue;
        if (c == ".." && !out.empty() && out.back() != "..") {
            out.pop_back();
            continue;
        }
        out.push_back(c);
    }
    std::string joined;
    for (const std::string &c : out) {
        if (!joined.empty())
            joined.push_back('/');
        joined += c;
    }
    return joined;
}

} // namespace

std::string
moduleOfPath(const std::string &path)
{
    const std::vector<std::string> comps = pathComponents(path);
    if (comps.size() < 3 || comps.front() != "src")
        return "";
    return comps[1];
}

const std::map<std::string, int> &
moduleTiers()
{
    static const std::map<std::string, int> kTiers = {
        {"common", 0},                   //
        {"circuit", 1},    {"obs", 1},   //
        {"sram", 2},       {"energy", 2}, //
        {"core", 3},       {"dnn", 3},   {"timing", 3}, //
        {"resilience", 4}, {"accel", 4}, //
        {"fi", 5},                       //
        {"recovery", 6},                 //
        {"serve", 7},                    //
        {"cluster", 8},                  //
    };
    return kTiers;
}

int
moduleTier(const std::string &module)
{
    const auto &tiers = moduleTiers();
    const auto it = tiers.find(module);
    return it == tiers.end() ? -1 : it->second;
}

IncludeGraph
buildIncludeGraph(const std::vector<IncludeScanInput> &files)
{
    IncludeGraph graph;

    std::set<std::string> scanned;
    for (const IncludeScanInput &f : files)
        scanned.insert(f.path);

    for (const IncludeScanInput &f : files) {
        if (f.lex == nullptr)
            continue;
        for (const Directive &d : f.lex->directives) {
            // Directive text is "#include ..." with collapsed
            // whitespace; '#' may be separated from the keyword.
            std::string body = d.text;
            if (body.empty() || body.front() != '#')
                continue;
            body = trimCopy(body.substr(1));
            const std::string kw = "include";
            if (body.compare(0, kw.size(), kw) != 0)
                continue;
            body = trimCopy(body.substr(kw.size()));
            if (body.empty())
                continue;

            IncludeEdge e;
            e.fromFile = f.path;
            e.line = d.line;

            if (body.front() == '"') {
                const std::size_t close = body.find('"', 1);
                if (close == std::string::npos)
                    continue; // unterminated; not our problem
                e.kind = IncludeKind::Quoted;
                e.target = body.substr(1, close - 1);
                // The repo convention is src-rooted quoted includes
                // ("common/rng.hpp"); fall back to includer-relative.
                const std::string as_src =
                    normalizePath("src/" + e.target);
                const std::string as_rel =
                    normalizePath(dirOf(f.path).empty()
                                      ? e.target
                                      : dirOf(f.path) + "/" + e.target);
                if (scanned.count(as_src))
                    e.resolvedFile = as_src;
                else if (scanned.count(as_rel))
                    e.resolvedFile = as_rel;
            } else if (body.front() == '<') {
                const std::size_t close = body.find('>', 1);
                if (close == std::string::npos)
                    continue;
                e.kind = IncludeKind::Angled;
                e.target = body.substr(1, close - 1);
            } else {
                e.kind = IncludeKind::Computed;
                e.target = body;
            }

            if (!e.resolvedFile.empty())
                graph.resolvedOut[e.fromFile].push_back(
                    graph.edges.size());
            graph.edges.push_back(e);
        }
    }

    return graph;
}

namespace {

/** Iterative DFS cycle finder. Every back-edge found during the DFS
 *  closes one elementary cycle along the current stack; canonicalizing
 *  (rotate to smallest member) and dedup'ing gives each cycle once. */
struct CycleFinder
{
    const IncludeGraph &graph;
    std::map<std::string, int> state; // 0 unvisited, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::set<std::string> seen_keys;
    std::vector<std::vector<std::string>> cycles;

    void
    visit(const std::string &file)
    {
        state[file] = 1;
        stack.push_back(file);
        const auto it = graph.resolvedOut.find(file);
        if (it != graph.resolvedOut.end()) {
            for (std::size_t ei : it->second) {
                const std::string &to = graph.edges[ei].resolvedFile;
                const int s = state.count(to) ? state[to] : 0;
                if (s == 0) {
                    visit(to);
                } else if (s == 1) {
                    recordCycle(to);
                }
            }
        }
        stack.pop_back();
        state[file] = 2;
    }

    void
    recordCycle(const std::string &back_to)
    {
        const auto start =
            std::find(stack.begin(), stack.end(), back_to);
        if (start == stack.end())
            return;
        std::vector<std::string> cycle(start, stack.end());
        // Canonical form: rotate the smallest member to the front.
        const auto min_it =
            std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        std::string key;
        for (const std::string &f : cycle)
            key += f + "|";
        if (seen_keys.insert(key).second)
            cycles.push_back(std::move(cycle));
    }
};

} // namespace

std::vector<std::vector<std::string>>
findIncludeCycles(const IncludeGraph &graph)
{
    CycleFinder finder{graph, {}, {}, {}, {}};
    for (const auto &[file, _] : graph.resolvedOut)
        if (finder.state[file] == 0)
            finder.visit(file);
    std::sort(finder.cycles.begin(), finder.cycles.end());
    return finder.cycles;
}

} // namespace vboost::vblint
