#include "analyzer.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"
#include "project_model.hpp"
#include "project_rules.hpp"
#include "scan_util.hpp"

namespace vboost::vblint {

namespace {

// ---------------------------------------------------- type environment

/** Identifiers whose declared type matters to the rules. */
struct DeclEnv
{
    std::set<std::string> unorderedNames;
    std::set<std::string> floatLikeNames;
};

const std::set<std::string> &
unorderedTypes()
{
    static const std::set<std::string> kTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return kTypes;
}

/** float/double plus the repo's tagged-double quantities (units.hpp)
 *  and the float-element Tensor: accumulating any of these is a
 *  floating-point reduction. */
const std::set<std::string> &
floatLikeTypes()
{
    static const std::set<std::string> kTypes = {
        "float", "double", "Volt",  "Joule",   "Farad",
        "Second", "Watt",  "Hertz", "Coulomb", "Tensor"};
    return kTypes;
}

void
collectDecls(const LexedSource &src, DeclEnv &env)
{
    const auto &toks = src.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const bool unordered = unorderedTypes().count(toks[i].text) > 0;
        const bool floaty = floatLikeTypes().count(toks[i].text) > 0;
        if (!unordered && !floaty)
            continue;
        std::size_t j = skipAngles(toks, i + 1);
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Ident) {
            if (unordered)
                env.unorderedNames.insert(toks[j].text);
            else
                env.floatLikeNames.insert(toks[j].text);
        }
    }
}

// ------------------------------------------------------- annotations

struct ParsedAnnotation
{
    int line = 0;
    int targetLine = 0;
    Rule rule = Rule::VB001;
    std::string reason;
    bool used = false;
    bool malformed = false;
};

ParsedAnnotation
parseAnnotation(const RawAnnotation &raw, const LexedSource &src)
{
    ParsedAnnotation a;
    a.line = raw.line;

    // An own-line annotation suppresses the next code line — the next
    // token OR the next preprocessor directive, whichever comes first
    // (so a waiver can sit above an #include for VB006).
    int next_code = std::numeric_limits<int>::max();
    if (raw.nextTokenIndex < src.tokens.size())
        next_code = src.tokens[raw.nextTokenIndex].line;
    for (const Directive &d : src.directives) {
        if (d.line > raw.line) {
            next_code = std::min(next_code, d.line);
            break;
        }
    }
    if (next_code == std::numeric_limits<int>::max())
        next_code = raw.line;
    a.targetLine = raw.trailing ? raw.line : next_code;

    const std::string &t = raw.text;
    const std::size_t paren = t.find('(');
    std::string word = t.substr(0, paren == std::string::npos ? t.size()
                                                              : paren);
    while (!word.empty() && (word.back() == ' ' || word.back() == '\t'))
        word.pop_back();
    std::string inner;
    if (paren != std::string::npos) {
        const std::size_t close = t.rfind(')');
        if (close == std::string::npos || close < paren) {
            a.malformed = true;
            return a;
        }
        inner = t.substr(paren + 1, close - paren - 1);
    }

    auto trimmed = [](std::string s) {
        const std::size_t b = s.find_first_not_of(" \t");
        if (b == std::string::npos)
            return std::string();
        const std::size_t e = s.find_last_not_of(" \t");
        return s.substr(b, e - b + 1);
    };

    if (word == "allow") {
        const std::size_t comma = inner.find(',');
        const std::string name =
            trimmed(comma == std::string::npos ? inner
                                               : inner.substr(0, comma));
        const auto rule = ruleFromName(name);
        if (!rule) {
            a.malformed = true;
            return a;
        }
        a.rule = *rule;
        a.reason = comma == std::string::npos
                       ? ""
                       : trimmed(inner.substr(comma + 1));
        return a;
    }
    if (word == "ordered-ok") {
        a.rule = Rule::VB002;
        a.reason = trimmed(inner);
        return a;
    }
    if (word == "assoc-ok") {
        a.rule = Rule::VB003;
        a.reason = trimmed(inner);
        return a;
    }
    a.malformed = true;
    return a;
}

struct Frame
{
    enum class Ctx { Top, Namespace, Class, Enum, Function, Block, Init };
    Ctx ctx = Ctx::Top;
    bool loop = false;
    int savedParenDepth = 0;
};

using Ctx = Frame::Ctx;

bool
headContains(const std::vector<const Token *> &head, const char *text)
{
    for (const Token *t : head)
        if (t->text == text)
            return true;
    return false;
}

/** Name + line of the declared entity: the last identifier before the
 *  first '=' (or before the end of the head). */
const Token *
declaredName(const std::vector<const Token *> &head)
{
    const Token *name = nullptr;
    for (const Token *t : head) {
        if (t->text == "=")
            break;
        if (t->kind == TokKind::Ident)
            name = t;
    }
    return name;
}

class FileChecker
{
  public:
    FileChecker(const std::string &path, const LexedSource &src,
                const DeclEnv &env)
        : path_(path),
          comps_(pathComponents(path)),
          src_(src),
          env_(env),
          modelCode_(isModelCode(comps_)),
          header_(isHeaderPath(path))
    {
    }

    std::vector<Diagnostic>
    run()
    {
        if (header_)
            checkHeaderGuard();
        walk();
        return std::move(diags_);
    }

  private:
    void
    report(Rule rule, int line, std::string message)
    {
        Diagnostic d;
        d.file = path_;
        d.line = line;
        d.rule = rule;
        d.message = std::move(message);
        d.sourceLine = src_.line(line);
        diags_.push_back(std::move(d));
    }

    // ---- VB005: include guard ------------------------------------
    void
    checkHeaderGuard()
    {
        bool pragma_once = false;
        std::string ifndef_macro;
        bool guarded = false;
        for (const Directive &d : src_.directives) {
            std::string body = d.text;
            if (!body.empty() && body.front() == '#')
                body.erase(body.begin());
            while (!body.empty() && body.front() == ' ')
                body.erase(body.begin());
            if (body.rfind("pragma", 0) == 0 &&
                body.find("once") != std::string::npos)
                pragma_once = true;
            else if (body.rfind("ifndef ", 0) == 0 && ifndef_macro.empty())
                ifndef_macro = body.substr(7);
            else if (body.rfind("define ", 0) == 0 && !ifndef_macro.empty()) {
                std::string name = body.substr(7);
                const std::size_t sp = name.find(' ');
                if (sp != std::string::npos)
                    name = name.substr(0, sp);
                if (name == ifndef_macro)
                    guarded = true;
            }
        }
        if (!pragma_once && !guarded)
            report(Rule::VB005, 1,
                   "header has no include guard (#pragma once or a "
                   "matching #ifndef/#define pair)");
    }

    // ---- main token walk -----------------------------------------
    void
    walk()
    {
        const auto &toks = src_.tokens;
        stack_.push_back({Ctx::Top, false, 0});
        head_.clear();
        parenDepth_ = 0;

        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];

            if (t.kind == TokKind::Ident) {
                checkBannedIdent(toks, i);
                checkUsingNamespace(toks, i);
                checkUnorderedIteration(toks, i);
            }

            if (t.text == "(") {
                ++parenDepth_;
                head_.push_back(&t);
                continue;
            }
            if (t.text == ")") {
                parenDepth_ = std::max(0, parenDepth_ - 1);
                head_.push_back(&t);
                continue;
            }

            if (t.text == "{" && parenDepth_ == 0) {
                pushBrace();
                continue;
            }
            if (t.text == "}" && parenDepth_ == 0) {
                if (stack_.size() > 1) {
                    parenDepth_ = stack_.back().savedParenDepth;
                    stack_.pop_back();
                }
                head_.clear();
                continue;
            }
            if (t.text == ";" && parenDepth_ == 0) {
                endStatement();
                continue;
            }

            if (t.text == "+=" && inLoop())
                checkLoopAccumulation(toks, i);

            head_.push_back(&t);
        }
    }

    bool
    inLoop() const
    {
        for (const Frame &f : stack_)
            if (f.loop)
                return true;
        return false;
    }

    void
    pushBrace()
    {
        const Ctx cur = stack_.back().ctx;
        Frame f;
        f.savedParenDepth = parenDepth_;
        parenDepth_ = 0;

        const bool has_paren = headContains(head_, "(");
        const std::string first =
            head_.empty() ? "" : head_.front()->text;

        if (headContains(head_, "namespace") && !has_paren) {
            f.ctx = Ctx::Namespace;
        } else if (headContains(head_, "enum")) {
            f.ctx = Ctx::Enum;
        } else if ((headContains(head_, "class") ||
                    headContains(head_, "struct") ||
                    headContains(head_, "union")) &&
                   !has_paren) {
            f.ctx = Ctx::Class;
        } else if (first == "for" || first == "while" || first == "do") {
            f.ctx = Ctx::Block;
            f.loop = true;
        } else if (cur == Ctx::Function || cur == Ctx::Block ||
                   cur == Ctx::Init) {
            f.ctx = Ctx::Block;
        } else if (has_paren) {
            f.ctx = Ctx::Function;
        } else if (headContains(head_, "=")) {
            f.ctx = Ctx::Init;
        } else {
            // Brace initialization of a variable, e.g.
            // `std::atomic<bool> quietFlag{false};` at namespace scope.
            f.ctx = Ctx::Init;
            if (cur == Ctx::Top || cur == Ctx::Namespace)
                checkNamespaceVariable();
            else if (cur == Ctx::Class)
                checkStaticDeclaration(/*require_static=*/true);
        }
        stack_.push_back(f);
        head_.clear();
    }

    void
    endStatement()
    {
        const Ctx cur = stack_.back().ctx;
        if (cur == Ctx::Top || cur == Ctx::Namespace)
            checkNamespaceVariable();
        else if (cur == Ctx::Class || cur == Ctx::Function ||
                 cur == Ctx::Block)
            checkStaticDeclaration(/*require_static=*/true);
        if ((cur == Ctx::Function || cur == Ctx::Block) &&
            (!head_.empty() && (head_.front()->text == "for" ||
                                head_.front()->text == "while")))
            checkBracelessLoop();
        head_.clear();
    }

    // ---- VB001 ----------------------------------------------------
    void
    checkBannedIdent(const std::vector<Token> &toks, std::size_t i)
    {
        if (!modelCode_)
            return;
        const std::string &text = toks[i].text;
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        if (prev == "." || prev == "->")
            return; // member access on some object; not the libc symbol
        if (bannedTypeIdents().count(text)) {
            report(Rule::VB001, toks[i].line,
                   "use of banned nondeterminism source '" + text +
                       "' in model code (seeded vboost::Rng streams "
                       "only; see --explain VB001)");
            return;
        }
        if (bannedCallIdents().count(text) && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            report(Rule::VB001, toks[i].line,
                   "call to banned nondeterminism source '" + text +
                       "()' in model code (seeded vboost::Rng streams "
                       "only; see --explain VB001)");
        }
    }

    // ---- VB002 ----------------------------------------------------
    void
    checkUnorderedIteration(const std::vector<Token> &toks, std::size_t i)
    {
        const std::string &text = toks[i].text;
        // Range-for: `for ( ... : expr )` with an unordered name in expr.
        if (text == "for" && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            int depth = 0;
            std::size_t colon = 0;
            std::size_t close = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                if (toks[j].text == "(")
                    ++depth;
                else if (toks[j].text == ")") {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (toks[j].text == ":" && depth == 1 && colon == 0)
                    colon = j;
            }
            if (colon == 0 || close == 0)
                return;
            for (std::size_t j = colon + 1; j < close; ++j) {
                if (toks[j].kind == TokKind::Ident &&
                    env_.unorderedNames.count(toks[j].text)) {
                    report(Rule::VB002, toks[j].line,
                           "iteration over unordered container '" +
                               toks[j].text +
                               "' (order is hash-table dependent; see "
                               "--explain VB002)");
                    return;
                }
            }
            return;
        }
        // Iterator loop: `name.begin()` / `name.cbegin()`.
        if ((text == "begin" || text == "cbegin") && i >= 2 &&
            toks[i - 1].text == "." &&
            toks[i - 2].kind == TokKind::Ident &&
            env_.unorderedNames.count(toks[i - 2].text) &&
            i + 1 < toks.size() && toks[i + 1].text == "(") {
            report(Rule::VB002, toks[i].line,
                   "iteration over unordered container '" +
                       toks[i - 2].text +
                       "' (order is hash-table dependent; see --explain "
                       "VB002)");
        }
    }

    // ---- VB003 ----------------------------------------------------
    void
    flagAccumulation(const std::vector<Token> &toks, std::size_t plusEq)
    {
        // Walk back over the lvalue (`a.b[i] +=` etc.) and take the
        // last identifier outside index brackets as the accumulator.
        std::size_t j = plusEq;
        std::string name;
        while (j > 0) {
            const Token &p = toks[j - 1];
            if (p.text == "]") {
                int depth = 0;
                while (j > 0) {
                    if (toks[j - 1].text == "]")
                        ++depth;
                    else if (toks[j - 1].text == "[") {
                        if (--depth == 0) {
                            --j;
                            break;
                        }
                    }
                    --j;
                }
                continue;
            }
            if (p.kind == TokKind::Ident) {
                name = p.text;
                break;
            }
            if (p.text == "." || p.text == "->" || p.text == "::" ||
                p.text == ")") {
                --j;
                continue;
            }
            break;
        }
        if (name.empty() || !env_.floatLikeNames.count(name))
            return;
        report(Rule::VB003, toks[plusEq].line,
               "floating-point accumulation '" + name +
                   " +=' inside a loop (order-sensitive; annotate "
                   "assoc-ok if the order is fixed; see --explain "
                   "VB003)");
    }

    void
    checkLoopAccumulation(const std::vector<Token> &toks, std::size_t i)
    {
        if (!modelCode_)
            return;
        flagAccumulation(toks, i);
    }

    /** Braceless `for (...) stmt;` / `while (...) stmt;`: scan the
     *  body (tokens after the control parens) for accumulations. With
     *  an enclosing braced loop the walk already flagged every `+=` in
     *  this statement — running again would double-report. */
    void
    checkBracelessLoop()
    {
        if (!modelCode_ || inLoop())
            return;
        // Rebuild a token vector from the head pointers; find the end
        // of the control clause.
        std::size_t depth = 0;
        std::size_t body_start = head_.size();
        for (std::size_t j = 0; j < head_.size(); ++j) {
            if (head_[j]->text == "(")
                ++depth;
            else if (head_[j]->text == ")") {
                if (--depth == 0) {
                    body_start = j + 1;
                    break;
                }
            }
        }
        std::vector<Token> body;
        for (std::size_t j = body_start; j < head_.size(); ++j)
            body.push_back(*head_[j]);
        for (std::size_t j = 0; j < body.size(); ++j)
            if (body[j].text == "+=")
                flagAccumulation(body, j);
    }

    // ---- VB004 ----------------------------------------------------
    bool
    headIsSkippableDeclaration() const
    {
        static const char *kSkip[] = {
            "using",  "typedef", "namespace", "template",      "friend",
            "operator", "extern", "static_assert", "concept",  "requires",
            "enum",   "class",   "struct",    "union"};
        for (const char *kw : kSkip)
            if (headContains(head_, kw))
                return true;
        if (headContains(head_, "(") || headContains(head_, "const") ||
            headContains(head_, "constexpr") ||
            headContains(head_, "consteval"))
            return true;
        return false;
    }

    void
    checkNamespaceVariable()
    {
        if (!modelCode_ || head_.empty())
            return;
        if (headIsSkippableDeclaration())
            return;
        int idents = 0;
        for (const Token *t : head_)
            if (t->kind == TokKind::Ident)
                ++idents;
        if (idents < 2)
            return; // a stray expression or label, not a declaration
        const Token *name = declaredName(head_);
        if (!name)
            return;
        report(Rule::VB004, name->line,
               "mutable global state '" + name->text +
                   "' at namespace scope in model code (see --explain "
                   "VB004)");
    }

    void
    checkStaticDeclaration(bool require_static)
    {
        if (!modelCode_ || head_.empty())
            return;
        const std::string &first = head_.front()->text;
        if (require_static && first != "static" && first != "thread_local")
            return;
        if (headIsSkippableDeclaration())
            return;
        int idents = 0;
        for (const Token *t : head_)
            if (t->kind == TokKind::Ident)
                ++idents;
        if (idents < 3) // static + type + name
            return;
        const Token *name = declaredName(head_);
        if (!name)
            return;
        report(Rule::VB004, name->line,
               "mutable static state '" + name->text +
                   "' in model code (see --explain VB004)");
    }

    // ---- VB005: using namespace in headers ------------------------
    void
    checkUsingNamespace(const std::vector<Token> &toks, std::size_t i)
    {
        if (!header_)
            return;
        if (toks[i].text != "using" || i + 1 >= toks.size() ||
            toks[i + 1].text != "namespace")
            return;
        const Ctx cur = stack_.empty() ? Ctx::Top : stack_.back().ctx;
        if (cur == Ctx::Top || cur == Ctx::Namespace || cur == Ctx::Class)
            report(Rule::VB005, toks[i].line,
                   "'using namespace' at namespace scope in a header "
                   "leaks into every includer (see --explain VB005)");
    }

    const std::string path_;
    const std::vector<std::string> comps_;
    const LexedSource &src_;
    const DeclEnv &env_;
    const bool modelCode_;
    const bool header_;

    std::vector<Frame> stack_;
    std::vector<const Token *> head_;
    int parenDepth_ = 0;
    std::vector<Diagnostic> diags_;
};

/** Apply a file's `// vblint:` annotations to its diagnostics:
 *  suppress matches, then surface malformed (VB901) and unused (VB900)
 *  annotations as diagnostics of their own, and sort. */
void
resolveAnnotations(const std::string &path, const LexedSource &src,
                   std::vector<Diagnostic> &diags,
                   std::vector<Suppression> &suppressions)
{
    std::vector<ParsedAnnotation> annotations;
    annotations.reserve(src.annotations.size());
    for (const RawAnnotation &raw : src.annotations)
        annotations.push_back(parseAnnotation(raw, src));

    for (Diagnostic &d : diags) {
        for (ParsedAnnotation &a : annotations) {
            if (!a.malformed && a.rule == d.rule &&
                a.targetLine == d.line) {
                d.status = DiagStatus::Suppressed;
                a.used = true;
                break;
            }
        }
    }

    for (const ParsedAnnotation &a : annotations) {
        if (a.malformed) {
            Diagnostic d;
            d.file = path;
            d.line = a.line;
            d.rule = Rule::VB901;
            d.message =
                "malformed vblint annotation (expected allow(VBxxx, "
                "reason), ordered-ok(reason) or assoc-ok(reason))";
            d.sourceLine = src.line(a.line);
            diags.push_back(std::move(d));
            continue;
        }
        Suppression s;
        s.file = path;
        s.line = a.line;
        s.targetLine = a.targetLine;
        s.rule = a.rule;
        s.reason = a.reason;
        s.used = a.used;
        suppressions.push_back(std::move(s));
        if (!a.used) {
            Diagnostic d;
            d.file = path;
            d.line = a.line;
            d.rule = Rule::VB900;
            d.message = "unused vblint suppression for " +
                        ruleName(a.rule) +
                        " (no matching diagnostic on line " +
                        std::to_string(a.targetLine) + ")";
            d.sourceLine = src.line(a.line);
            diags.push_back(std::move(d));
        }
    }

    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return ruleName(a.rule) < ruleName(b.rule);
              });
}

} // namespace

FileAnalysis
analyzeSource(const std::string &path, const std::string &content,
              const std::string &sibling_header)
{
    const RepoReport report =
        analyzeAll({{path, content, sibling_header}}, {});
    FileAnalysis out;
    out.diagnostics = report.diagnostics;
    out.suppressions = report.suppressions;
    return out;
}

std::vector<BaselineEntry>
parseBaseline(const std::string &content, std::vector<std::string> &errors)
{
    std::vector<BaselineEntry> out;
    std::istringstream in(content);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string t = normalizeWs(line);
        if (t.empty() || t.front() == '#')
            continue;
        const std::size_t p1 = line.find('|');
        const std::size_t p2 =
            p1 == std::string::npos ? std::string::npos
                                    : line.find('|', p1 + 1);
        if (p2 == std::string::npos) {
            errors.push_back("baseline line " + std::to_string(lineno) +
                             ": expected 'file|RULE|source text'");
            continue;
        }
        BaselineEntry e;
        e.file = normalizeWs(line.substr(0, p1));
        e.rule = normalizeWs(line.substr(p1 + 1, p2 - p1 - 1));
        e.sourceLine = normalizeWs(line.substr(p2 + 1));
        if (!ruleFromName(e.rule)) {
            errors.push_back("baseline line " + std::to_string(lineno) +
                             ": unknown rule '" + e.rule + "'");
            continue;
        }
        out.push_back(std::move(e));
    }
    return out;
}

namespace {

const char *kBaselineHeader =
    "# vblint baseline: pre-existing waived diagnostics.\n"
    "# Format: file|RULE|normalized source line text.\n"
    "# Entries match by content, not line number, so unrelated\n"
    "# edits never invalidate them. Remove entries as the code\n"
    "# they waive is fixed; vblint reports stale entries.\n";

} // namespace

std::string
formatBaseline(const std::vector<Diagnostic> &diags)
{
    std::ostringstream out;
    out << kBaselineHeader;
    for (const Diagnostic &d : diags) {
        if (d.status != DiagStatus::Active)
            continue;
        out << d.file << '|' << ruleName(d.rule) << '|'
            << normalizeWs(d.sourceLine) << '\n';
    }
    return out.str();
}

int
RepoReport::countWithStatus(DiagStatus s) const
{
    int n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.status == s)
            ++n;
    return n;
}

RepoReport
analyzeAll(const std::vector<SourceInput> &inputs,
           const std::vector<BaselineEntry> &baseline)
{
    RepoReport report;
    report.filesScanned = static_cast<int>(inputs.size());

    // ---- pass 1: project model (lex once, include graph, symbols) --
    const ProjectModel model = buildProjectModel(inputs);

    // ---- pass 2: per-file rules + project rules --------------------
    std::map<std::string, std::vector<Diagnostic>> byFile;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const LexedFile &f = model.files[i];
        DeclEnv env;
        collectDecls(f.lex, env);
        if (f.siblingIndex >= 0)
            collectDecls(
                model.files[static_cast<std::size_t>(f.siblingIndex)].lex,
                env);
        FileChecker checker(f.path, f.lex, env);
        byFile[f.path] = checker.run();
    }

    std::vector<Diagnostic> projectDiags;
    runProjectRules(model, projectDiags);
    for (Diagnostic &d : projectDiags)
        byFile[d.file].push_back(std::move(d));

    // ---- waiver resolution + baseline, in input order --------------
    std::map<std::string, int> pending;
    auto keyOf = [](const std::string &file, const std::string &rule,
                    const std::string &text) {
        return file + "|" + rule + "|" + text;
    };
    for (const BaselineEntry &e : baseline)
        ++pending[keyOf(e.file, e.rule, e.sourceLine)];

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const LexedFile &f = model.files[i];
        std::vector<Diagnostic> diags = std::move(byFile[f.path]);
        byFile[f.path].clear(); // duplicate paths analyze once
        resolveAnnotations(f.path, f.lex, diags, report.suppressions);
        for (Diagnostic &d : diags) {
            if (d.status == DiagStatus::Active) {
                const std::string key = keyOf(
                    d.file, ruleName(d.rule), normalizeWs(d.sourceLine));
                auto it = pending.find(key);
                if (it != pending.end() && it->second > 0) {
                    --it->second;
                    d.status = DiagStatus::Baselined;
                }
            }
            report.diagnostics.push_back(std::move(d));
        }
    }

    for (const BaselineEntry &e : baseline) {
        auto it = pending.find(keyOf(e.file, e.rule, e.sourceLine));
        if (it != pending.end() && it->second > 0) {
            --it->second;
            report.staleBaseline.push_back(e);
        }
    }
    return report;
}

BaselineUpdate
updateBaseline(const RepoReport &report)
{
    BaselineUpdate up;
    std::ostringstream out;
    out << kBaselineHeader;
    for (const Diagnostic &d : report.diagnostics) {
        if (d.status == DiagStatus::Suppressed)
            continue;
        if (d.status == DiagStatus::Active)
            ++up.added;
        else
            ++up.kept;
        out << d.file << '|' << ruleName(d.rule) << '|'
            << normalizeWs(d.sourceLine) << '\n';
    }
    up.content = out.str();
    up.prunedEntries = report.staleBaseline;
    up.pruned = static_cast<int>(up.prunedEntries.size());
    return up;
}

} // namespace vboost::vblint
