#include "report.hpp"

#include "bench/json_writer.hpp"

namespace vboost::vblint {

namespace {

const char *
statusName(DiagStatus s)
{
    switch (s) {
      case DiagStatus::Active:
        return "active";
      case DiagStatus::Suppressed:
        return "suppressed";
      case DiagStatus::Baselined:
        return "baselined";
    }
    return "?";
}

/** Escape a workflow-command data value (message text). */
std::string
ghEscapeData(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '%':
            out += "%25";
            break;
          case '\r':
            out += "%0D";
            break;
          case '\n':
            out += "%0A";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

/** Escape a workflow-command property value (file=, title=). */
std::string
ghEscapeProperty(const std::string &s)
{
    std::string out;
    for (char c : ghEscapeData(s)) {
        if (c == ',')
            out += "%2C";
        else if (c == ':')
            out += "%3A";
        else
            out.push_back(c);
    }
    return out;
}

} // namespace

void
printGithubAnnotations(std::ostream &os, const RepoReport &report)
{
    for (const Diagnostic &d : report.diagnostics) {
        if (d.status != DiagStatus::Active)
            continue;
        os << "::error file=" << ghEscapeProperty(d.file)
           << ",line=" << d.line << ",title="
           << ghEscapeProperty("vblint " + ruleName(d.rule)) << "::"
           << ghEscapeData(d.message) << "\n";
    }
    for (const BaselineEntry &e : report.staleBaseline) {
        os << "::warning file=" << ghEscapeProperty(e.file) << ",title="
           << ghEscapeProperty("vblint stale baseline") << "::"
           << ghEscapeData("stale baseline entry (matched nothing): " +
                           e.rule + "|" + e.sourceLine)
           << "\n";
    }
}

void
printText(std::ostream &os, const RepoReport &report, bool all)
{
    for (const Diagnostic &d : report.diagnostics) {
        if (!all && d.status != DiagStatus::Active)
            continue;
        os << d.file << ":" << d.line << ": " << ruleName(d.rule) << ": "
           << d.message;
        if (d.status != DiagStatus::Active)
            os << " [" << statusName(d.status) << "]";
        os << "\n";
        if (!d.sourceLine.empty())
            os << "    " << d.sourceLine << "\n";
    }
    for (const BaselineEntry &e : report.staleBaseline)
        os << "vblint: stale baseline entry (matched nothing): " << e.file
           << "|" << e.rule << "|" << e.sourceLine << "\n";
}

void
printSuppressions(std::ostream &os, const RepoReport &report)
{
    if (report.suppressions.empty()) {
        os << "no vblint suppressions in the scanned tree\n";
        return;
    }
    for (const Suppression &s : report.suppressions) {
        os << s.file << ":" << s.line << ": " << ruleName(s.rule)
           << " waived";
        if (s.targetLine != s.line)
            os << " (line " << s.targetLine << ")";
        os << ": " << (s.reason.empty() ? "<no reason given>" : s.reason)
           << (s.used ? "" : " [UNUSED]") << "\n";
    }
}

void
printSummary(std::ostream &os, const RepoReport &report)
{
    const int active = report.countWithStatus(DiagStatus::Active);
    const int suppressed = report.countWithStatus(DiagStatus::Suppressed);
    const int baselined = report.countWithStatus(DiagStatus::Baselined);
    os << "vblint: " << report.filesScanned << " files, "
       << (active + suppressed + baselined) << " diagnostics (" << active
       << " active, " << suppressed << " suppressed inline, " << baselined
       << " baselined)";
    if (!report.staleBaseline.empty())
        os << ", " << report.staleBaseline.size()
           << " stale baseline entries";
    os << "\n";
}

void
writeJson(std::ostream &os, const RepoReport &report,
          const std::string &root)
{
    bench::JsonWriter j(os);
    j.beginObject()
        .field("tool", "vblint")
        .field("formatVersion", std::int64_t{1})
        .field("root", root)
        .field("filesScanned", std::int64_t{report.filesScanned});

    j.beginObjectField("summary")
        .field("total", std::int64_t(report.diagnostics.size()))
        .field("active",
               std::int64_t{report.countWithStatus(DiagStatus::Active)})
        .field("suppressed",
               std::int64_t{report.countWithStatus(DiagStatus::Suppressed)})
        .field("baselined",
               std::int64_t{report.countWithStatus(DiagStatus::Baselined)})
        .field("staleBaseline",
               std::int64_t(report.staleBaseline.size()))
        .endObject();

    j.beginArrayField("rules");
    for (Rule r : allRules()) {
        j.beginObject()
            .field("id", ruleName(r))
            .field("summary", ruleSummary(r))
            .endObject();
    }
    j.endArray();

    j.beginArrayField("diagnostics");
    for (const Diagnostic &d : report.diagnostics) {
        j.beginObject()
            .field("file", d.file)
            .field("line", std::int64_t{d.line})
            .field("rule", ruleName(d.rule))
            .field("status", statusName(d.status))
            .field("message", d.message)
            .field("sourceLine", d.sourceLine)
            .endObject();
    }
    j.endArray();

    j.beginArrayField("suppressions");
    for (const Suppression &s : report.suppressions) {
        j.beginObject()
            .field("file", s.file)
            .field("line", std::int64_t{s.line})
            .field("targetLine", std::int64_t{s.targetLine})
            .field("rule", ruleName(s.rule))
            .field("reason", s.reason)
            .field("used", s.used)
            .endObject();
    }
    j.endArray();

    j.beginArrayField("staleBaseline");
    for (const BaselineEntry &e : report.staleBaseline) {
        j.beginObject()
            .field("file", e.file)
            .field("rule", e.rule)
            .field("sourceLine", e.sourceLine)
            .endObject();
    }
    j.endArray();

    j.endObject();
}

} // namespace vboost::vblint
