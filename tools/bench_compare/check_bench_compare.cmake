# End-to-end self-check of the perf-trajectory gate: produce a real
# smoke-mode BENCH_perf.json with the harness, then require
#   (a) comparing the run against itself to PASS (every gate holds on
#       identical numbers, and the derived speedup clears its floor),
#   (b) a synthetic baseline that makes the hard fused-kernel entry
#       look 100x faster to FAIL with exit status 1, and
#   (c) a baseline naming a kernel the current run lacks to FAIL.
# Invoked by the bench_compare_gate ctest entry with
# -DBENCH_PERF=<exe> -DBENCH_COMPARE=<exe> -DWORK_DIR=<dir>.

if(NOT BENCH_PERF)
    message(FATAL_ERROR "pass -DBENCH_PERF=<path to bench_perf_micro>")
endif()
if(NOT BENCH_COMPARE)
    message(FATAL_ERROR "pass -DBENCH_COMPARE=<path to bench_compare>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<writable work directory>")
endif()

set(ENV{VBOOST_BENCH_SMOKE} 1)
set(current ${WORK_DIR}/bench-compare-current.json)

execute_process(
    COMMAND ${BENCH_PERF} --threads 1 --json ${current}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "bench_perf_micro smoke run failed (${rc}):\n${out}\n${err}")
endif()

# (a) Self-comparison must pass: identical numbers regress nothing.
execute_process(
    COMMAND ${BENCH_COMPARE} ${current} ${current}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "self-comparison unexpectedly failed (${rc}):\n${out}\n${err}")
endif()

# (b) A baseline claiming the hard fused kernel once ran 100x faster
# must trip the hard gate. The entry's identity (kernel, backend,
# threads) matches the real smoke run.
set(regressed ${WORK_DIR}/bench-compare-regressed.json)
file(WRITE ${regressed} "{
  \"schema\": \"vboost-bench-perf/1\",
  \"bench\": \"perf_micro\",
  \"threads\": 1,
  \"smoke\": true,
  \"entries\": [
    {
      \"kernel\": \"fused_corrupt_dequant\",
      \"backend\": \"vectorized\",
      \"threads\": 1,
      \"gate\": \"hard\",
      \"ns_per_op\": 0.001,
      \"items_per_op\": 1048576
    }
  ]
}
")
execute_process(
    COMMAND ${BENCH_COMPARE} ${regressed} ${current}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "hard regression was not detected (exit ${rc}, want 1):\n"
        "${out}\n${err}")
endif()

# (c) A baseline entry missing from the current run must fail too.
set(missing ${WORK_DIR}/bench-compare-missing.json)
file(WRITE ${missing} "{
  \"schema\": \"vboost-bench-perf/1\",
  \"bench\": \"perf_micro\",
  \"threads\": 1,
  \"smoke\": true,
  \"entries\": [
    {
      \"kernel\": \"kernel_that_no_longer_exists\",
      \"backend\": \"vectorized\",
      \"threads\": 1,
      \"gate\": \"soft\",
      \"ns_per_op\": 1.0,
      \"items_per_op\": 1
    }
  ]
}
")
execute_process(
    COMMAND ${BENCH_COMPARE} ${missing} ${current}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "dropped-kernel baseline was not detected (exit ${rc}, want 1):\n"
        "${out}\n${err}")
endif()

message(STATUS "bench_compare gate OK: self-compare passes, hard "
               "regression and dropped kernels fail")
