/**
 * @file
 * bench_compare: the perf-trajectory regression gate (README
 * "Performance trajectory"). Compares a freshly produced
 * BENCH_perf.json against the committed baseline and enforces the
 * per-entry gate policy:
 *
 *  - `hard` kernel entries FAIL the run when the current ns/op
 *    regresses more than the tolerance (default 15%) over baseline.
 *  - `hard` derived entries (value + min_gate, e.g. the fig14
 *    speedup ratio) FAIL when the current value drops below
 *    min_gate * (1 - tolerance).
 *  - `soft` entries only emit a GitHub Actions `::warning`
 *    annotation on regression — they cover kernels whose ns/op is
 *    too noise-prone on shared CI runners for a hard gate.
 *  - An entry present in the baseline but missing from the current
 *    run is always an error (a silently dropped kernel would make
 *    the gate vacuous).
 *
 * Entries are matched by (kernel, backend, threads). Exit status 0
 * when every hard gate passes, 1 otherwise. Usage:
 *
 *   bench_compare <baseline.json> <current.json> [--tolerance 0.15]
 *
 * The parser below covers exactly the JSON dialect bench/json_writer
 * emits (objects, arrays, strings, numbers, bools, null — no
 * escapes beyond \" \\ \/ \b \f \n \r \t \uXXXX).
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ------------------------------------------------------ tiny JSON

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &f : fields)
            if (f.first == key)
                return &f.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : text_(std::move(text)) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        std::fprintf(stderr, "bench_compare: JSON parse error at byte %zu: %s\n",
                     pos_, why.c_str());
        std::exit(2);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal, expected ") + word);
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The writer never emits non-ASCII; keep it simple.
                out += static_cast<char>(code < 128 ? code : '?');
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    value()
    {
        switch (peek()) {
        case '{': {
            JsonValue v;
            v.kind = JsonValue::Kind::Object;
            ++pos_;
            if (consume('}'))
                return v;
            while (true) {
                std::string key = string();
                expect(':');
                v.fields.emplace_back(std::move(key), value());
                if (consume('}'))
                    return v;
                expect(',');
            }
        }
        case '[': {
            JsonValue v;
            v.kind = JsonValue::Kind::Array;
            ++pos_;
            if (consume(']'))
                return v;
            while (true) {
                v.items.push_back(value());
                if (consume(']'))
                    return v;
                expect(',');
            }
        }
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.text = string();
            return v;
        }
        case 't': {
            literal("true");
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        case 'f': {
            literal("false");
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        case 'n': {
            literal("null");
            return {};
        }
        default: {
            const std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '-' || text_[pos_] == '+' ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E'))
                ++pos_;
            if (pos_ == start)
                fail("unexpected character");
            JsonValue v;
            v.kind = JsonValue::Kind::Number;
            v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                   nullptr);
            return v;
        }
        }
    }

    std::string text_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------------ comparison

struct Entry
{
    std::string kernel, backend, gate;
    long long threads = 0;
    std::optional<double> nsPerOp;
    std::optional<double> value;
    std::optional<double> minGate;
};

using EntryKey = std::tuple<std::string, std::string, long long>;

std::string
str(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::String) {
        std::fprintf(stderr, "bench_compare: entry missing string field %s\n",
                     key);
        std::exit(2);
    }
    return v->text;
}

std::map<EntryKey, Entry>
loadEntries(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    JsonParser parser(buf.str());
    const JsonValue doc = parser.parse();
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || schema->text != "vboost-bench-perf/1") {
        std::fprintf(stderr,
                     "bench_compare: %s: unsupported or missing schema "
                     "(want vboost-bench-perf/1)\n",
                     path.c_str());
        std::exit(2);
    }
    const JsonValue *entries = doc.find("entries");
    if (entries == nullptr || entries->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr, "bench_compare: %s: no entries array\n",
                     path.c_str());
        std::exit(2);
    }
    std::map<EntryKey, Entry> out;
    for (const JsonValue &e : entries->items) {
        Entry entry;
        entry.kernel = str(e, "kernel");
        entry.backend = str(e, "backend");
        entry.gate = str(e, "gate");
        if (const JsonValue *t = e.find("threads"))
            entry.threads = static_cast<long long>(t->number);
        if (const JsonValue *v = e.find("ns_per_op"))
            entry.nsPerOp = v->number;
        if (const JsonValue *v = e.find("value"))
            entry.value = v->number;
        if (const JsonValue *v = e.find("min_gate"))
            entry.minGate = v->number;
        out[{entry.kernel, entry.backend, entry.threads}] = entry;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, current_path;
    double tolerance = 0.15;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_compare: --tolerance needs a value\n");
                return 2;
            }
            tolerance = std::strtod(argv[++i], nullptr);
            if (!(tolerance >= 0.0 && tolerance < 1.0)) {
                std::fprintf(stderr,
                             "bench_compare: tolerance must be in [0, 1)\n");
                return 2;
            }
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            std::fprintf(stderr, "bench_compare: unexpected argument %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (current_path.empty()) {
        std::fprintf(stderr,
                     "usage: bench_compare <baseline.json> <current.json> "
                     "[--tolerance 0.15]\n");
        return 2;
    }

    const auto baseline = loadEntries(baseline_path);
    const auto current = loadEntries(current_path);

    int hard_failures = 0, warnings = 0, checked = 0;
    for (const auto &[key, base] : baseline) {
        const auto it = current.find(key);
        const std::string label = base.kernel + " [" + base.backend +
                                  ", threads=" +
                                  std::to_string(base.threads) + "]";
        if (it == current.end()) {
            std::fprintf(stderr,
                         "FAIL %s: present in baseline but missing from "
                         "current run\n",
                         label.c_str());
            ++hard_failures;
            continue;
        }
        const Entry &cur = it->second;
        ++checked;

        if (base.value && base.minGate) {
            // Derived ratio entry: gate on the floor, not the baseline
            // (a faster-than-baseline reference leg must not fail a
            // still-passing ratio).
            if (!cur.value) {
                std::fprintf(stderr, "FAIL %s: current entry lost its value\n",
                             label.c_str());
                ++hard_failures;
                continue;
            }
            const double floor = *base.minGate * (1.0 - tolerance);
            const bool ok = *cur.value >= floor;
            std::printf("%s %s: value %.3f (gate >= %.3f, min_gate %.2f)\n",
                        ok ? "ok  " : "FAIL", label.c_str(), *cur.value,
                        floor, *base.minGate);
            if (!ok)
                ++hard_failures;
            continue;
        }

        if (!base.nsPerOp || !cur.nsPerOp) {
            std::fprintf(stderr, "FAIL %s: entry without ns_per_op\n",
                         label.c_str());
            ++hard_failures;
            continue;
        }
        const double limit = *base.nsPerOp * (1.0 + tolerance);
        const double ratio = *cur.nsPerOp / *base.nsPerOp;
        const bool regressed = *cur.nsPerOp > limit;
        if (!regressed) {
            std::printf("ok   %s: %.1f ns/op vs baseline %.1f (%.2fx)\n",
                        label.c_str(), *cur.nsPerOp, *base.nsPerOp, ratio);
        } else if (base.gate == "hard") {
            std::printf("FAIL %s: %.1f ns/op vs baseline %.1f (%.2fx > "
                        "%.2f tolerance)\n",
                        label.c_str(), *cur.nsPerOp, *base.nsPerOp, ratio,
                        1.0 + tolerance);
            ++hard_failures;
        } else {
            // Soft gate: annotate, do not fail. The ::warning line is
            // surfaced by GitHub Actions; plain terminals just see it.
            std::printf("::warning title=bench_compare::%s regressed: "
                        "%.1f ns/op vs baseline %.1f (%.2fx)\n",
                        label.c_str(), *cur.nsPerOp, *base.nsPerOp, ratio);
            ++warnings;
        }
    }

    std::printf("bench_compare: %d entries checked, %d hard failure(s), "
                "%d warning(s), tolerance %.0f%%\n",
                checked, hard_failures, warnings, tolerance * 100.0);
    return hard_failures == 0 ? 0 : 1;
}
